//! Grouping-pattern mining (§5.1).
//!
//! Runs Apriori over the FD-closed attribute set, maps each frequent
//! pattern to the set of output groups it covers (Definition 4.4), and
//! applies the paper's post-processing: two grouping patterns covering the
//! *same* group set are redundant — even absent FDs between their
//! attributes — so each distinct covered set keeps only the shortest (then
//! lexicographically smallest) pattern, pre-satisfying the incomparability
//! constraint of Definition 4.5.

use std::collections::HashMap;

use table::bitset::BitSet;
use table::pattern::Pattern;
use table::query::AggView;
use table::Table;

use crate::apriori::apriori;

/// A candidate grouping pattern with its covered groups and matching rows.
#[derive(Debug, Clone)]
pub struct GroupingPattern {
    /// The predicate over FD-closed attributes.
    pub pattern: Pattern,
    /// Groups of `Q(D)` covered (Definition 4.4).
    pub coverage: BitSet,
    /// Input rows belonging to covered groups — the CATE subpopulation.
    pub rows: BitSet,
}

/// Mine candidate grouping patterns.
///
/// * `gp_attrs` — attributes with `A_gb → W` (from [`table::fd::fd_closure`]),
/// * `tau` — Apriori support threshold as a fraction of `|D|` (paper
///   default 0.1),
/// * `max_len` — maximum conjuncts per pattern.
///
/// When `gp_attrs` is empty (no FDs hold — e.g. the German dataset), each
/// output group becomes its own singleton grouping pattern over the
/// group-by attributes themselves, as the paper does ("each group in the
/// aggregated view necessitates a distinct explanation").
pub fn mine_grouping_patterns(
    table: &Table,
    view: &AggView,
    gp_attrs: &[usize],
    tau: f64,
    max_len: usize,
) -> Vec<GroupingPattern> {
    let min_support = ((tau * table.nrows() as f64).ceil() as usize).max(1);
    let mut candidates: Vec<(Pattern, BitSet)> = Vec::new();

    if gp_attrs.is_empty() {
        // Fallback: one pattern per output group, defined on A_gb itself.
        for g in 0..view.num_groups() {
            let preds: Vec<table::Pred> = view
                .group_by
                .iter()
                .zip(&view.keys[g])
                .map(|(&attr, &code)| {
                    let v = table
                        .column(attr)
                        .dict()
                        .map(|d| d.value(code).to_string())
                        .unwrap_or_default();
                    table::Pred::eq(attr, v.as_str())
                })
                .collect();
            candidates.push((Pattern::new(preds), BitSet::new(0)));
        }
    } else {
        for fp in apriori(table, gp_attrs, min_support, max_len) {
            candidates.push((fp.pattern, fp.rows));
        }
    }

    // Coverage + redundancy removal.
    let mut by_coverage: HashMap<BitSet, GroupingPattern> = HashMap::new();
    for (pattern, _) in candidates {
        let Ok(coverage) = view.coverage(table, &pattern) else {
            continue;
        };
        if coverage.is_empty() {
            continue;
        }
        let rows = BitSet::from_mask(&view.subpopulation_mask(&coverage));
        let entry = GroupingPattern {
            pattern,
            coverage: coverage.clone(),
            rows,
        };
        match by_coverage.entry(coverage) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(entry);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let cur = o.get();
                let better = entry.pattern.len() < cur.pattern.len()
                    || (entry.pattern.len() == cur.pattern.len()
                        && entry.pattern.key() < cur.pattern.key());
                if better {
                    o.insert(entry);
                }
            }
        }
    }

    let mut out: Vec<GroupingPattern> = by_coverage.into_values().collect();
    // Deterministic order: larger coverage first, then shorter, then key.
    out.sort_by(|a, b| {
        b.coverage
            .count()
            .cmp(&a.coverage.count())
            .then(a.pattern.len().cmp(&b.pattern.len()))
            .then(a.pattern.key().cmp(&b.pattern.key()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use table::query::GroupByAvgQuery;
    use table::TableBuilder;

    /// 3 countries; continent and gdp both split {US} vs {India, China} —
    /// i.e. (continent=Asia) and (gdp=Low) are redundant.
    fn toy() -> Table {
        TableBuilder::new()
            .cat("country", &["US", "US", "India", "India", "China", "China"])
            .unwrap()
            .cat("continent", &["NA", "NA", "Asia", "Asia", "Asia", "Asia"])
            .unwrap()
            .cat("gdp", &["High", "High", "Low", "Low", "Low", "Low"])
            .unwrap()
            .float("salary", vec![10.0, 12.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn redundant_coverage_deduped() {
        let t = toy();
        let view = GroupByAvgQuery::new(vec![0], 3).run(&t).unwrap();
        let pats = mine_grouping_patterns(&t, &view, &[1, 2], 0.1, 2);
        // Distinct coverages: {US}, {India,China}. The {India,China} set is
        // reachable via continent=Asia, gdp=Low, and their conjunction —
        // exactly one survives, a single-predicate one.
        assert_eq!(pats.len(), 2);
        for p in &pats {
            assert_eq!(p.pattern.len(), 1, "shortest pattern must be kept");
        }
        let asia = pats.iter().find(|p| p.coverage.count() == 2).unwrap();
        assert_eq!(asia.rows.count(), 4);
    }

    #[test]
    fn support_threshold_prunes() {
        let t = toy();
        let view = GroupByAvgQuery::new(vec![0], 3).run(&t).unwrap();
        // τ=0.9 ⇒ min support 6; only patterns satisfied by all rows would
        // survive, and none are.
        let pats = mine_grouping_patterns(&t, &view, &[1, 2], 0.9, 2);
        assert!(pats.is_empty());
    }

    #[test]
    fn no_fd_fallback_builds_per_group_patterns() {
        let t = toy();
        let view = GroupByAvgQuery::new(vec![0], 3).run(&t).unwrap();
        let pats = mine_grouping_patterns(&t, &view, &[], 0.1, 2);
        assert_eq!(pats.len(), 3, "one pattern per group");
        for p in &pats {
            assert_eq!(p.coverage.count(), 1);
        }
    }

    #[test]
    fn deterministic_ordering() {
        let t = toy();
        let view = GroupByAvgQuery::new(vec![0], 3).run(&t).unwrap();
        let a = mine_grouping_patterns(&t, &view, &[1, 2], 0.1, 2);
        let b = mine_grouping_patterns(&t, &view, &[1, 2], 0.1, 2);
        let ka: Vec<String> = a.iter().map(|p| p.pattern.key()).collect();
        let kb: Vec<String> = b.iter().map(|p| p.pattern.key()).collect();
        assert_eq!(ka, kb);
    }
}
