//! Score-based structure learning: greedy hill climbing over DAGs with the
//! BIC score (Gaussian likelihood).
//!
//! Complements the constraint-based (PC/FCI) and functional-causal-model
//! (LiNGAM) families — §6.6 observes that "causal DAGs can originate from
//! various sources, including … existing causal discovery methods"; the
//! score-based family is the third standard source. Starting from the
//! empty graph, the climber repeatedly applies the single edge addition,
//! deletion, or reversal that most improves the decomposable BIC score
//!
//! ```text
//! BIC(G) = Σ_v [ −n/2 · ln σ̂²(v | Pa(v)) ] − ln(n)/2 · #params(G)
//! ```
//!
//! until no move improves, with an in-degree cap for tractability.

use causal::dag::Dag;
use stats::matrix::Matrix;

/// Maximum parents per node (standard tractability knob).
pub const MAX_PARENTS: usize = 4;

/// Greedy BIC hill climbing over the variables of `data`.
pub fn hill_climb(data: &[Vec<f64>], names: &[String], max_iters: usize) -> Dag {
    let nv = data.len();
    if nv == 0 {
        return Dag::new(names, &[] as &[(String, String)]).expect("empty");
    }
    let n = data[0].len() as f64;
    let penalty = n.ln() / 2.0;

    // parents[v] = sorted parent list.
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); nv];
    // Cache each node's local score.
    let mut local: Vec<f64> = (0..nv)
        .map(|v| local_score(data, v, &[], penalty))
        .collect();

    #[derive(Clone, Copy)]
    enum Move {
        Add(usize, usize), // a → b
        Del(usize, usize), // remove a → b
        Rev(usize, usize), // a → b becomes b → a
    }

    for _ in 0..max_iters {
        let mut best: Option<(Move, f64)> = None;
        for a in 0..nv {
            for b in 0..nv {
                if a == b {
                    continue;
                }
                let has_ab = parents[b].contains(&a);
                let has_ba = parents[a].contains(&b);
                if !has_ab && !has_ba {
                    // Addition a → b.
                    if parents[b].len() >= MAX_PARENTS || creates_cycle(&parents, a, b) {
                        continue;
                    }
                    let mut pb = parents[b].clone();
                    pb.push(a);
                    let delta = local_score(data, b, &pb, penalty) - local[b];
                    if delta > 1e-9 && best.is_none_or(|(_, d)| delta > d) {
                        best = Some((Move::Add(a, b), delta));
                    }
                } else if has_ab {
                    // Deletion of a → b.
                    let pb: Vec<usize> = parents[b].iter().copied().filter(|&p| p != a).collect();
                    let delta = local_score(data, b, &pb, penalty) - local[b];
                    if delta > 1e-9 && best.is_none_or(|(_, d)| delta > d) {
                        best = Some((Move::Del(a, b), delta));
                    }
                    // Reversal a → b ⇒ b → a.
                    if parents[a].len() < MAX_PARENTS {
                        let mut pa = parents[a].clone();
                        pa.push(b);
                        // Temporarily remove a→b to test the cycle.
                        let mut tmp = parents.clone();
                        tmp[b].retain(|&p| p != a);
                        if !creates_cycle(&tmp, b, a) {
                            let delta = (local_score(data, b, &pb, penalty) - local[b])
                                + (local_score(data, a, &pa, penalty) - local[a]);
                            if delta > 1e-9 && best.is_none_or(|(_, d)| delta > d) {
                                best = Some((Move::Rev(a, b), delta));
                            }
                        }
                    }
                }
            }
        }
        let Some((mv, _)) = best else { break };
        match mv {
            Move::Add(a, b) => {
                parents[b].push(a);
                local[b] = local_score(data, b, &parents[b], penalty);
            }
            Move::Del(a, b) => {
                parents[b].retain(|&p| p != a);
                local[b] = local_score(data, b, &parents[b], penalty);
            }
            Move::Rev(a, b) => {
                parents[b].retain(|&p| p != a);
                parents[a].push(b);
                local[b] = local_score(data, b, &parents[b], penalty);
                local[a] = local_score(data, a, &parents[a], penalty);
            }
        }
    }

    let mut edges: Vec<(String, String)> = Vec::new();
    for (v, ps) in parents.iter().enumerate() {
        for &p in ps {
            edges.push((names[p].clone(), names[v].clone()));
        }
    }
    Dag::new(names, &edges).expect("cycle checks keep the graph acyclic")
}

/// Gaussian BIC local score of `v` given parent set `ps`.
fn local_score(data: &[Vec<f64>], v: usize, ps: &[usize], penalty: f64) -> f64 {
    let n = data[v].len();
    let y = &data[v];
    let p = ps.len() + 1;
    let mut x = Matrix::zeros(n, p);
    for r in 0..n {
        x[(r, 0)] = 1.0;
        for (c, &pa) in ps.iter().enumerate() {
            x[(r, c + 1)] = data[pa][r];
        }
    }
    let gram = x.gram();
    let xty = x.tr_mul_vec(y);
    let rss = match gram.solve_spd(&xty) {
        Some(beta) => {
            let mut rss = 0.0;
            for r in 0..n {
                let yhat: f64 = x.row(r).iter().zip(&beta).map(|(a, b)| a * b).sum();
                rss += (y[r] - yhat).powi(2);
            }
            rss
        }
        None => f64::INFINITY,
    };
    let sigma2 = (rss / n as f64).max(1e-12);
    -(n as f64) / 2.0 * sigma2.ln() - penalty * p as f64
}

/// Would adding `a → b` create a directed cycle (path b ⇝ a)?
fn creates_cycle(parents: &[Vec<usize>], a: usize, b: usize) -> bool {
    // Walk ancestors of a; if b is among them adding a→b closes a cycle…
    // actually we need: path from b back to a via parent edges reversed.
    // children view: edge p → v for p in parents[v]. Path b ⇝ a exists iff
    // a is reachable from b following child edges, i.e. b is an ancestor
    // of a.
    let nv = parents.len();
    let mut stack = vec![a];
    let mut seen = vec![false; nv];
    while let Some(v) = stack.pop() {
        if v == b {
            return true;
        }
        if seen[v] {
            continue;
        }
        seen[v] = true;
        for &p in &parents[v] {
            stack.push(p);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn recovers_chain_skeleton() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 3_000;
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|&v| 0.9 * v + 0.4 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let c: Vec<f64> = b
            .iter()
            .map(|&v| 0.9 * v + 0.4 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let g = hill_climb(&[a, b, c], &names(3), 100);
        let adj = |x: usize, y: usize| g.has_edge(x, y) || g.has_edge(y, x);
        assert!(adj(0, 1), "a–b edge expected, got {:?}", g.edges());
        assert!(adj(1, 2), "b–c edge expected");
        // Direct a–c edge should be pruned by BIC (conditional independence).
        assert!(!adj(0, 2), "a–c should be absent given b");
    }

    #[test]
    fn independent_variables_stay_empty() {
        let mut rng = StdRng::seed_from_u64(37);
        let data: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..2_000).map(|_| rng.gen_range(-1.0..1.0f64)).collect())
            .collect();
        let g = hill_climb(&data, &names(4), 100);
        assert!(g.num_edges() <= 1, "got {} edges", g.num_edges());
    }

    #[test]
    fn output_is_acyclic_and_degree_capped() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 1_500;
        // Dense dependencies: v_k depends on all previous.
        let mut data: Vec<Vec<f64>> = Vec::new();
        data.push((0..n).map(|_| rng.gen_range(-1.0..1.0f64)).collect());
        for k in 1..6 {
            let prev: Vec<f64> = (0..n)
                .map(|r| {
                    let s: f64 = data.iter().map(|c| c[r]).sum();
                    s / k as f64 + 0.5 * rng.gen_range(-1.0..1.0f64)
                })
                .collect();
            data.push(prev);
        }
        let g = hill_climb(&data, &names(6), 200);
        assert!(g.topological_order().is_some());
        for v in 0..g.len() {
            assert!(g.parents(v).len() <= MAX_PARENTS);
        }
    }

    #[test]
    fn empty_input_handled() {
        let g = hill_climb(&[], &[], 10);
        assert!(g.is_empty());
    }
}
