//! A conservative FCI-style algorithm.
//!
//! Full FCI handles latent confounders via PAGs; what the CauSumX
//! evaluation needs (§6.6, Table 4) is its *behavioural* signature: an
//! algorithm in the same constraint-based family that prunes more
//! aggressively than PC (the paper's Table 4 shows FCI graphs with fewer
//! edges than PC on every dataset). We reproduce that with the standard
//! "possible-d-sep" augmentation step: after the PC skeleton, each
//! remaining edge is re-tested against conditioning sets drawn from the
//! *union* of both endpoints' neighbourhoods (PC only conditions on one
//! side), which removes additional edges; v-structures and Meek rules then
//! orient what survives, and the result is emitted as a DAG for downstream
//! CATE estimation.

use causal::dag::Dag;
use stats::corr::fisher_z_test;

use crate::pc::{orient_v_structures, pc_skeleton};
use crate::skeleton::for_each_subset;

/// Extra conditioning-set size for the augmentation pass.
const MAX_AUG_COND: usize = 3;

/// Run the conservative FCI variant.
pub fn fci(data: &[Vec<f64>], names: &[String], alpha: f64) -> Dag {
    let (mut g, mut seps) = pc_skeleton(data, alpha);

    // Possible-d-sep style augmentation: condition on subsets of
    // adj(i) ∪ adj(j).
    let n = g.n;
    for i in 0..n {
        for j in i + 1..n {
            if !g.adjacent(i, j) {
                continue;
            }
            let mut pool: Vec<usize> = g
                .neighbors(i)
                .into_iter()
                .chain(g.neighbors(j))
                .filter(|&v| v != i && v != j)
                .collect();
            pool.sort_unstable();
            pool.dedup();
            let mut removed = false;
            for k in 1..=MAX_AUG_COND.min(pool.len()) {
                let found = for_each_subset(&pool, k, &mut |s| {
                    let zs: Vec<&[f64]> = s.iter().map(|&v| data[v].as_slice()).collect();
                    let p = fisher_z_test(&data[i], &data[j], &zs);
                    if p > alpha {
                        seps.insert(i, j, s.to_vec());
                        true
                    } else {
                        false
                    }
                });
                if found {
                    removed = true;
                    break;
                }
            }
            if removed {
                g.disconnect(i, j);
            }
        }
    }

    orient_v_structures(&mut g, &seps);
    g.meek();
    g.into_dag(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pc::pc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    /// Diamond: a → b, a → c, b → d, c → d, plus two noise vars.
    fn diamond(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|&v| 0.8 * v + 0.5 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let c: Vec<f64> = a
            .iter()
            .map(|&v| 0.8 * v + 0.5 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let d: Vec<f64> = b
            .iter()
            .zip(&c)
            .map(|(&x, &y)| 0.6 * x + 0.6 * y + 0.4 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let e: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let f: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        vec![a, b, c, d, e, f]
    }

    #[test]
    fn fci_no_denser_than_pc() {
        let data = diamond(3_000, 5);
        let g_pc = pc(&data, &names(6), 0.01);
        let g_fci = fci(&data, &names(6), 0.01);
        assert!(
            g_fci.num_edges() <= g_pc.num_edges(),
            "fci {} > pc {}",
            g_fci.num_edges(),
            g_pc.num_edges()
        );
    }

    #[test]
    fn fci_keeps_true_strong_edges() {
        let data = diamond(3_000, 6);
        let g = fci(&data, &names(6), 0.01);
        // The b–d and c–d adjacencies are strong and direct; at least one
        // must survive the aggressive pruning.
        let adj = |x: usize, y: usize| g.has_edge(x, y) || g.has_edge(y, x);
        assert!(adj(1, 3) || adj(2, 3), "lost every edge into d");
    }

    #[test]
    fn output_is_acyclic() {
        let data = diamond(1_000, 7);
        let g = fci(&data, &names(6), 0.05);
        assert!(g.topological_order().is_some());
    }
}
