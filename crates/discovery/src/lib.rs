//! # discovery — causal structure learning
//!
//! §6.6 of the CauSumX paper studies how the system behaves when the causal
//! DAG is not given but *discovered*: they run PC, FCI and LiNGAM, plus a
//! `No-DAG` strawman in which every attribute points directly at the
//! outcome, and compare the resulting explainability and treatment
//! rankings against the ground-truth DAG (Fig. 16/23, Table 4).
//!
//! This crate re-implements that toolbox from scratch:
//!
//! * [`fn@pc`] — PC-stable: levelwise skeleton search with Fisher-z
//!   conditional-independence tests, v-structure orientation, Meek rules
//!   1–3, and a consistent DAG extension,
//! * [`fn@fci`] — a conservative FCI-style variant that prunes further using
//!   larger conditioning sets drawn from the union of both endpoints'
//!   neighbourhoods (yielding sparser graphs, as in Table 4),
//! * [`fn@lingam`] — DirectLiNGAM with the pairwise likelihood-ratio measure
//!   built on the Hyvärinen negentropy approximation, with OLS-pruned
//!   edges,
//! * [`hillclimb`] — greedy BIC hill climbing, the score-based third
//!   family of discovery methods (an extension beyond the paper's three),
//! * [`no_dag`] — the strawman with edges `Aᵢ → outcome` only.
//!
//! All algorithms consume a numeric data matrix (categorical columns enter
//! as dictionary codes, as is standard practice when applying Gaussian CI
//! tests to mixed data) and emit a [`causal::Dag`] over the table's
//! attribute names.

pub mod fci;
pub mod hillclimb;
pub mod lingam;
pub mod pc;
mod skeleton;

use causal::dag::Dag;
use table::Table;

pub use fci::fci;
pub use hillclimb::hill_climb;
pub use lingam::lingam;
pub use pc::pc;

/// Extract the per-column numeric view used by all discovery algorithms.
pub fn numeric_columns(table: &Table) -> Vec<Vec<f64>> {
    (0..table.ncols())
        .map(|a| {
            let col = table.column(a);
            (0..table.nrows()).map(|r| col.get_f64(r)).collect()
        })
        .collect()
}

/// Attribute names of a table, for DAG construction.
pub fn attr_names(table: &Table) -> Vec<String> {
    table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect()
}

/// The `No-DAG` strawman: every attribute is a direct parent of the
/// outcome and nothing else (§6.6, following the approach of \[30\]).
pub fn no_dag(names: &[String], outcome: &str) -> Dag {
    let edges: Vec<(String, String)> = names
        .iter()
        .filter(|n| n.as_str() != outcome)
        .map(|n| (n.clone(), outcome.to_string()))
        .collect();
    Dag::new(names, &edges).expect("star graph is acyclic")
}

/// Structural Hamming distance between two DAGs over the same variable
/// set: counts edges present in exactly one graph or reversed.
pub fn shd(a: &Dag, b: &Dag) -> usize {
    let mut d = 0;
    let n = a.len();
    assert_eq!(n, b.len());
    for i in 0..n {
        for j in i + 1..n {
            let (aij, aji) = (a.has_edge(i, j), a.has_edge(j, i));
            let (bij, bji) = (b.has_edge(i, j), b.has_edge(j, i));
            if (aij, aji) != (bij, bji) {
                d += 1;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_dag_is_star() {
        let names: Vec<String> = ["a", "b", "y"].iter().map(|s| s.to_string()).collect();
        let g = no_dag(&names, "y");
        assert_eq!(g.num_edges(), 2);
        let y = g.index_of("y").unwrap();
        assert_eq!(g.parents(y).len(), 2);
        assert!(g.children(y).is_empty());
    }

    #[test]
    fn shd_counts_differences() {
        let names = ["a", "b", "c"];
        let g1 = Dag::new(&names, &[("a", "b"), ("b", "c")]).unwrap();
        let g2 = Dag::new(&names, &[("b", "a"), ("b", "c")]).unwrap();
        assert_eq!(shd(&g1, &g2), 1); // a-b reversed
        assert_eq!(shd(&g1, &g1), 0);
        let g3 = Dag::new(&names, &[("b", "c")]).unwrap();
        assert_eq!(shd(&g1, &g3), 1); // a-b missing
    }
}
