//! DirectLiNGAM (Shimizu et al.) — linear non-Gaussian acyclic models.
//!
//! Iteratively identifies an exogenous ("root") variable using the
//! pairwise likelihood-ratio measure built on Hyvärinen's maximum-entropy
//! negentropy approximation, regresses it out of the remainder, and
//! repeats; the discovered causal order is then pruned to a sparse DAG by
//! OLS coefficient thresholding — mirroring the reference `lingam` Python
//! package's DirectLiNGAM with `prune=True`.

use causal::dag::Dag;
use stats::matrix::Matrix;
use stats::ols::ols;

/// Edge-strength threshold (on standardized data) below which an edge is
/// dropped during pruning.
pub const PRUNE_THRESHOLD: f64 = 0.1;

/// Run DirectLiNGAM over the data matrix.
pub fn lingam(data: &[Vec<f64>], names: &[String]) -> Dag {
    let n_vars = data.len();
    if n_vars == 0 {
        return Dag::new(names, &[] as &[(String, String)]).expect("empty");
    }
    // Standardize working copies.
    let mut work: Vec<Vec<f64>> = data.iter().map(|c| standardize(c)).collect();
    let mut remaining: Vec<usize> = (0..n_vars).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n_vars);

    while remaining.len() > 1 {
        // Root = variable minimizing Σ_j min(0, R_ij)².
        let mut best = (f64::INFINITY, remaining[0]);
        for &i in &remaining {
            let mut score = 0.0;
            for &j in &remaining {
                if i == j {
                    continue;
                }
                let r = pairwise_lr(&work[i], &work[j]);
                score += r.min(0.0).powi(2);
            }
            if score < best.0 {
                best = (score, i);
            }
        }
        let root = best.1;
        order.push(root);
        remaining.retain(|&v| v != root);
        // Regress the root out of the remaining variables.
        let root_col = work[root].clone();
        for &j in &remaining {
            let b = cov(&work[j], &root_col) / cov(&root_col, &root_col).max(1e-12);
            let resid: Vec<f64> = work[j]
                .iter()
                .zip(&root_col)
                .map(|(&y, &x)| y - b * x)
                .collect();
            work[j] = standardize(&resid);
        }
    }
    if let Some(&last) = remaining.first() {
        order.push(last);
    }

    // Prune: regress each variable on all its predecessors in the order,
    // keep edges with |standardized coefficient| above threshold.
    let std_data: Vec<Vec<f64>> = data.iter().map(|c| standardize(c)).collect();
    let mut edges: Vec<(String, String)> = Vec::new();
    let nrows = data[0].len();
    for (pos, &v) in order.iter().enumerate() {
        if pos == 0 {
            continue;
        }
        let preds = &order[..pos];
        let mut x = Matrix::zeros(nrows, preds.len() + 1);
        for r in 0..nrows {
            x[(r, 0)] = 1.0;
            for (c, &p) in preds.iter().enumerate() {
                x[(r, c + 1)] = std_data[p][r];
            }
        }
        if let Some(fit) = ols(&x, &std_data[v]) {
            for (c, &p) in preds.iter().enumerate() {
                if fit.beta[c + 1].abs() > PRUNE_THRESHOLD {
                    edges.push((names[p].clone(), names[v].clone()));
                }
            }
        }
    }
    Dag::new(names, &edges).expect("ordered edges are acyclic")
}

/// Pairwise LR measure (Hyvärinen & Smith 2013):
/// `R_{i→j} = H(x_j) + H(r_i|j) − H(x_i) − H(r_j|i)`, the log-likelihood
/// ratio of the model `x_i → x_j` over `x_j → x_i`; positive values favor
/// i → j, and a truly exogenous `x_i` has `R_{i→j} ≥ 0` against every j.
fn pairwise_lr(xi: &[f64], xj: &[f64]) -> f64 {
    let b_ji = cov(xj, xi) / cov(xi, xi).max(1e-12);
    let b_ij = cov(xi, xj) / cov(xj, xj).max(1e-12);
    let r_j: Vec<f64> = xj.iter().zip(xi).map(|(&y, &x)| y - b_ji * x).collect();
    let r_i: Vec<f64> = xi.iter().zip(xj).map(|(&y, &x)| y - b_ij * x).collect();
    entropy_approx(xj) + entropy_approx(&standardize(&r_i))
        - entropy_approx(xi)
        - entropy_approx(&standardize(&r_j))
}

/// Hyvärinen's maximum-entropy approximation of differential entropy for a
/// standardized variable:
/// `H(x) ≈ H(ν) − k1·(E[log cosh x] − γ)² − k2·(E[x·e^{−x²/2}])²`.
fn entropy_approx(x: &[f64]) -> f64 {
    const H_NU: f64 = 1.418_938_533_204_672_7; // (1 + ln 2π) / 2
    const GAMMA: f64 = 0.374_566_16;
    const K1: f64 = 79.047;
    const K2: f64 = 7.412_885_5;
    let n = x.len() as f64;
    let m1 = x.iter().map(|&v| v.cosh().ln()).sum::<f64>() / n;
    let m2 = x.iter().map(|&v| v * (-v * v / 2.0).exp()).sum::<f64>() / n;
    H_NU - K1 * (m1 - GAMMA).powi(2) - K2 * m2.powi(2)
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn cov(a: &[f64], b: &[f64]) -> f64 {
    let (ma, mb) = (mean(a), mean(b));
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64
}

fn standardize(v: &[f64]) -> Vec<f64> {
    let m = mean(v);
    let sd = (v.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / v.len() as f64)
        .sqrt()
        .max(1e-12);
    v.iter().map(|&x| (x - m) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    /// Uniform noise keeps the model identifiable (non-Gaussian).
    fn uniform(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0f64)).collect()
    }

    #[test]
    fn two_variable_direction() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 5_000;
        let x = uniform(&mut rng, n);
        let e = uniform(&mut rng, n);
        let y: Vec<f64> = x.iter().zip(&e).map(|(&a, &b)| 0.8 * a + 0.6 * b).collect();
        let g = lingam(&[x, y], &names(2));
        assert!(
            g.has_edge(0, 1),
            "x → y expected, got edges {:?}",
            g.edges()
        );
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn chain_order_recovered() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 5_000;
        let a = uniform(&mut rng, n);
        let eb = uniform(&mut rng, n);
        let b: Vec<f64> = a
            .iter()
            .zip(&eb)
            .map(|(&x, &e)| 0.9 * x + 0.5 * e)
            .collect();
        let ec = uniform(&mut rng, n);
        let c: Vec<f64> = b
            .iter()
            .zip(&ec)
            .map(|(&x, &e)| 0.9 * x + 0.5 * e)
            .collect();
        let g = lingam(&[a, b, c], &names(3));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 0) && !g.has_edge(2, 1));
    }

    #[test]
    fn pruning_keeps_graph_sparse() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 4_000;
        // Independent variables: pruning should remove (nearly) all edges.
        let data: Vec<Vec<f64>> = (0..5).map(|_| uniform(&mut rng, n)).collect();
        let g = lingam(&data, &names(5));
        assert!(
            g.num_edges() <= 2,
            "expected sparse graph, got {}",
            g.num_edges()
        );
    }

    #[test]
    fn output_always_acyclic() {
        let mut rng = StdRng::seed_from_u64(14);
        let data: Vec<Vec<f64>> = (0..6).map(|_| uniform(&mut rng, 500)).collect();
        let g = lingam(&data, &names(6));
        assert!(g.topological_order().is_some());
    }
}
