//! Shared skeleton machinery: undirected graph state, sepsets, subset
//! enumeration, and CPDAG → DAG extension.

use std::collections::HashMap;

use causal::dag::Dag;

/// Partially directed graph state used during constraint-based search.
#[derive(Debug, Clone)]
pub struct Pdag {
    pub n: usize,
    /// `und[i][j]` — undirected edge i—j (symmetric).
    pub und: Vec<Vec<bool>>,
    /// `dir[i][j]` — directed edge i→j.
    pub dir: Vec<Vec<bool>>,
}

impl Pdag {
    /// Complete undirected graph on `n` nodes.
    pub fn complete(n: usize) -> Self {
        let mut und = vec![vec![true; n]; n];
        for (i, row) in und.iter_mut().enumerate() {
            row[i] = false;
        }
        Pdag {
            n,
            und,
            dir: vec![vec![false; n]; n],
        }
    }

    /// Any adjacency (undirected or either direction).
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.und[i][j] || self.dir[i][j] || self.dir[j][i]
    }

    /// Neighbours under any adjacency.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&j| j != i && self.adjacent(i, j))
            .collect()
    }

    /// Remove every mark between `i` and `j`.
    pub fn disconnect(&mut self, i: usize, j: usize) {
        self.und[i][j] = false;
        self.und[j][i] = false;
        self.dir[i][j] = false;
        self.dir[j][i] = false;
    }

    /// Orient `i → j` (consuming the undirected mark).
    pub fn orient(&mut self, i: usize, j: usize) {
        self.und[i][j] = false;
        self.und[j][i] = false;
        self.dir[i][j] = true;
    }

    /// Count all adjacencies (each edge once).
    pub fn num_edges(&self) -> usize {
        let mut c = 0;
        for i in 0..self.n {
            for j in i + 1..self.n {
                if self.adjacent(i, j) {
                    c += 1;
                }
            }
        }
        c
    }

    /// Meek rules 1–3, to fixpoint.
    pub fn meek(&mut self) {
        loop {
            let mut changed = false;
            for a in 0..self.n {
                for b in 0..self.n {
                    if !self.und[a][b] {
                        continue;
                    }
                    // R1: c → a, c not adjacent to b ⇒ a → b.
                    let r1 = (0..self.n).any(|c| self.dir[c][a] && !self.adjacent(c, b));
                    // R2: a → c → b ⇒ a → b.
                    let r2 = (0..self.n).any(|c| self.dir[a][c] && self.dir[c][b]);
                    // R3: a—c → b and a—d → b with c,d non-adjacent ⇒ a → b.
                    let mut r3 = false;
                    for c in 0..self.n {
                        if !(self.und[a][c] && self.dir[c][b]) {
                            continue;
                        }
                        for d in c + 1..self.n {
                            if self.und[a][d] && self.dir[d][b] && !self.adjacent(c, d) {
                                r3 = true;
                            }
                        }
                    }
                    if r1 || r2 || r3 {
                        self.orient(a, b);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Extend to a DAG: keep directed edges; orient the remaining
    /// undirected ones consistently (lower-index → higher-index unless that
    /// creates a cycle, in which case flip). The result is one member of
    /// the Markov equivalence class.
    pub fn into_dag(mut self, names: &[String]) -> Dag {
        // Repeatedly run Meek after each forced orientation to stay
        // class-consistent where possible.
        self.meek();
        loop {
            let mut next = None;
            'outer: for i in 0..self.n {
                for j in i + 1..self.n {
                    if self.und[i][j] {
                        next = Some((i, j));
                        break 'outer;
                    }
                }
            }
            let Some((i, j)) = next else { break };
            if self.would_cycle(i, j) {
                self.orient(j, i);
            } else {
                self.orient(i, j);
            }
            self.meek();
        }
        let mut edges: Vec<(String, String)> = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if self.dir[i][j] {
                    edges.push((names[i].clone(), names[j].clone()));
                }
            }
        }
        // Defensive: drop any edge that would make the graph cyclic (can
        // happen when CI-test noise orients v-structures inconsistently).
        loop {
            match Dag::new(names, &edges) {
                Ok(d) => return d,
                Err(_) => {
                    edges.pop();
                    if edges.is_empty() {
                        return Dag::new(names, &[] as &[(String, String)]).expect("empty graph");
                    }
                }
            }
        }
    }

    /// Would orienting `i → j` close a directed cycle?
    fn would_cycle(&self, i: usize, j: usize) -> bool {
        // Is there a directed path j ⇝ i?
        let mut stack = vec![j];
        let mut seen = vec![false; self.n];
        while let Some(v) = stack.pop() {
            if v == i {
                return true;
            }
            if seen[v] {
                continue;
            }
            seen[v] = true;
            for w in 0..self.n {
                if self.dir[v][w] {
                    stack.push(w);
                }
            }
        }
        false
    }
}

/// Sepset store keyed on unordered pairs.
#[derive(Debug, Default)]
pub struct Sepsets(HashMap<(usize, usize), Vec<usize>>);

impl Sepsets {
    pub fn insert(&mut self, i: usize, j: usize, s: Vec<usize>) {
        self.0.insert((i.min(j), i.max(j)), s);
    }

    pub fn get(&self, i: usize, j: usize) -> Option<&Vec<usize>> {
        self.0.get(&(i.min(j), i.max(j)))
    }
}

/// Enumerate all `k`-subsets of `items`, calling `f` until it returns true
/// (found a separating set); returns whether any call returned true.
pub fn for_each_subset(items: &[usize], k: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if cur.len() == k {
            return f(cur);
        }
        for i in start..items.len() {
            cur.push(items[i]);
            if rec(items, k, i + 1, cur, f) {
                return true;
            }
            cur.pop();
        }
        false
    }
    rec(items, k, 0, &mut Vec::new(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_enumeration_counts() {
        let items = [0, 1, 2, 3];
        let mut count = 0;
        for_each_subset(&items, 2, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn subset_early_exit() {
        let items = [0, 1, 2];
        let mut count = 0;
        let found = for_each_subset(&items, 1, &mut |s| {
            count += 1;
            s[0] == 1
        });
        assert!(found);
        assert_eq!(count, 2);
    }

    #[test]
    fn meek_rule1() {
        // c → a, a—b, c not adjacent to b ⇒ a → b.
        let mut g = Pdag {
            n: 3,
            und: vec![vec![false; 3]; 3],
            dir: vec![vec![false; 3]; 3],
        };
        g.dir[2][0] = true;
        g.und[0][1] = true;
        g.und[1][0] = true;
        g.meek();
        assert!(g.dir[0][1]);
        assert!(!g.und[0][1]);
    }

    #[test]
    fn into_dag_acyclic() {
        let names: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
        let g = Pdag::complete(4);
        let dag = g.into_dag(&names);
        assert!(dag.topological_order().is_some());
        assert_eq!(dag.num_edges(), 6);
    }
}
