//! The PC algorithm (Spirtes–Glymour–Scheines), stable variant.
//!
//! 1. Start from the complete undirected graph; remove edges levelwise:
//!    at level ℓ, test `x ⟂ y | S` for all `S ⊆ adj(x)\{y}` with `|S| = ℓ`
//!    using the Fisher-z partial-correlation test (adjacencies frozen per
//!    level — "PC-stable", which removes order dependence).
//! 2. Orient v-structures `i → k ← j` for non-adjacent `i, j` whose
//!    separating set excludes `k`.
//! 3. Apply Meek rules to propagate orientations, then extend the CPDAG to
//!    an arbitrary class member DAG.

use causal::dag::Dag;
use stats::corr::fisher_z_test;

use crate::skeleton::{for_each_subset, Pdag, Sepsets};

/// Maximum conditioning-set size examined (runtime guard; standard
/// implementations expose the same knob).
pub const MAX_COND: usize = 3;

/// Run PC-stable on the data matrix (`data[v]` = column of variable `v`).
pub fn pc(data: &[Vec<f64>], names: &[String], alpha: f64) -> Dag {
    let (mut g, seps) = pc_skeleton(data, alpha);
    orient_v_structures(&mut g, &seps);
    g.meek();
    g.into_dag(names)
}

/// Skeleton phase, exposed for FCI reuse. Returns the pruned graph (still
/// fully undirected) and the discovered separating sets.
pub fn pc_skeleton(data: &[Vec<f64>], alpha: f64) -> (Pdag, Sepsets) {
    let n = data.len();
    let mut g = Pdag::complete(n);
    let mut seps = Sepsets::default();

    for level in 0..=MAX_COND {
        // PC-stable: snapshot adjacencies for this level.
        let adj: Vec<Vec<usize>> = (0..n).map(|i| g.neighbors(i)).collect();
        let mut removed_any = false;
        for i in 0..n {
            for j in i + 1..n {
                if !g.adjacent(i, j) {
                    continue;
                }
                let candidates: Vec<usize> = adj[i].iter().copied().filter(|&v| v != j).collect();
                if candidates.len() < level {
                    continue;
                }
                let found = for_each_subset(&candidates, level, &mut |s| {
                    let zs: Vec<&[f64]> = s.iter().map(|&v| data[v].as_slice()).collect();
                    let p = fisher_z_test(&data[i], &data[j], &zs);
                    if p > alpha {
                        seps.insert(i, j, s.to_vec());
                        true
                    } else {
                        false
                    }
                });
                if found {
                    g.disconnect(i, j);
                    removed_any = true;
                }
            }
        }
        if !removed_any && level > 0 {
            break;
        }
    }
    (g, seps)
}

/// Orient v-structures from separating sets.
pub fn orient_v_structures(g: &mut Pdag, seps: &Sepsets) {
    let n = g.n;
    for k in 0..n {
        for i in 0..n {
            for j in i + 1..n {
                if i == k || j == k {
                    continue;
                }
                if g.adjacent(i, j) || !g.und[i][k] || !g.und[j][k] {
                    continue;
                }
                let in_sepset = seps.get(i, j).is_some_and(|s| s.contains(&k));
                if !in_sepset {
                    g.orient(i, k);
                    g.orient(j, k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    /// x → y → z linear chain with uniform noise.
    fn chain(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.9 * v + 0.4 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let z: Vec<f64> = y
            .iter()
            .map(|&v| 0.9 * v + 0.4 * rng.gen_range(-1.0..1.0f64))
            .collect();
        vec![x, y, z]
    }

    #[test]
    fn chain_skeleton_recovered() {
        let data = chain(3_000, 1);
        let (g, _) = pc_skeleton(&data, 0.01);
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 2));
        assert!(!g.adjacent(0, 2), "x ⟂ z | y must remove the 0–2 edge");
    }

    #[test]
    fn collider_oriented() {
        // x → z ← y, x ⟂ y marginally.
        let n = 4_000;
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let z: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| a + b + 0.3 * rng.gen_range(-1.0..1.0f64))
            .collect();
        let data = vec![x, y, z];
        let dag = pc(&data, &names(3), 0.01);
        let (xi, yi, zi) = (0, 1, 2);
        assert!(dag.has_edge(xi, zi), "x → z expected");
        assert!(dag.has_edge(yi, zi), "y → z expected");
        assert!(!dag.has_edge(zi, xi) && !dag.has_edge(zi, yi));
    }

    #[test]
    fn independent_variables_disconnected() {
        let n = 2_000;
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let dag = pc(&data, &names(4), 0.01);
        assert!(
            dag.num_edges() <= 1,
            "nearly no edges expected, got {}",
            dag.num_edges()
        );
    }

    #[test]
    fn output_is_acyclic_dag() {
        let data = chain(1_000, 4);
        let dag = pc(&data, &names(3), 0.05);
        assert!(dag.topological_order().is_some());
    }
}
