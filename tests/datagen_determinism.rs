//! Seeded generators are pure functions of `(params, seed)`.
//!
//! Every committed fingerprint in this repo — the workload-matrix cells,
//! the perf artifact's counters, the discovery precision floors — leans
//! on one assumption: regenerating a dataset at the same seed yields the
//! *same bytes*, across runs, platforms and thread counts. This suite
//! pins that assumption for all six generators by hashing everything a
//! pipeline can observe: schema names, column representation (kind,
//! dictionary contents in code order, every cell's bit pattern) and the
//! ground-truth DAG (names + edges).
//!
//! A second check asserts different seeds actually *move* the data — a
//! generator that ignores its seed would pass the replay check while
//! silently collapsing every "fresh seed" experiment onto one draw.

use table::{Column, Table};

/// FNV-1a over a byte stream; good enough to detect any divergence and
/// dependency-free (no hasher crates in the offline container).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
    fn str(&mut self, s: &str) {
        self.update(s.as_bytes());
        self.update(&[0xff]); // separator: "ab"+"c" != "a"+"bc"
    }
}

/// Exhaustive table fingerprint: schema, dictionaries, every cell bit.
fn table_fingerprint(t: &Table) -> u64 {
    let mut h = Fnv::new();
    for f in t.schema().fields() {
        h.str(&f.name);
    }
    for a in 0..t.ncols() {
        let col = t.column(a);
        match col {
            Column::Cat { .. } => {
                h.update(&[1]);
                let dict = col.dict().unwrap();
                for code in 0..dict.len() as u32 {
                    h.str(dict.value(code));
                }
                for &c in col.codes().unwrap() {
                    h.update(&c.to_le_bytes());
                }
            }
            _ => {
                h.update(&[2]);
                for r in 0..t.nrows() {
                    h.update(&col.get_f64(r).to_bits().to_le_bytes());
                }
            }
        }
    }
    h.0
}

/// Dataset fingerprint: the table plus its ground-truth DAG and query
/// anchors (outcome / group-by), everything downstream consumers read.
fn dataset_fingerprint(ds: &datagen::Dataset) -> u64 {
    let mut h = Fnv::new();
    h.update(&table_fingerprint(&ds.table).to_le_bytes());
    for name in ds.dag.names() {
        h.str(name);
    }
    for (a, b) in ds.dag.edges() {
        h.update(&(a as u64).to_le_bytes());
        h.update(&(b as u64).to_le_bytes());
    }
    h.update(&(ds.outcome as u64).to_le_bytes());
    for &g in &ds.group_by {
        h.update(&(g as u64).to_le_bytes());
    }
    h.0
}

/// All six generators at a fixed small size.
fn generate_all(seed: u64) -> Vec<(&'static str, datagen::Dataset)> {
    vec![
        ("so", datagen::so::generate(800, seed)),
        ("accidents", datagen::accidents::generate(800, seed)),
        ("adult", datagen::adult::generate(800, seed)),
        ("german", datagen::german::generate(800, seed)),
        ("impus", datagen::impus::generate(800, seed)),
        (
            "synthetic",
            datagen::synthetic::generate(
                datagen::synthetic::SynthParams {
                    n: 800,
                    ..Default::default()
                },
                seed,
            ),
        ),
    ]
}

/// Same seed ⇒ identical dataset, down to dictionary order and float
/// bits, for every generator.
#[test]
fn same_seed_replays_identical_datasets() {
    for seed in [42u64, 7] {
        let first = generate_all(seed);
        let second = generate_all(seed);
        for ((name, a), (_, b)) in first.iter().zip(&second) {
            assert_eq!(
                dataset_fingerprint(a),
                dataset_fingerprint(b),
                "{name} is not a pure function of its seed (seed {seed})"
            );
            assert_eq!(a.table.nrows(), b.table.nrows(), "{name}");
        }
    }
}

/// Different seeds ⇒ different data (the seed is actually consumed).
/// Schema and DAG stay fixed — only the drawn rows move.
#[test]
fn different_seeds_draw_different_data() {
    let a = generate_all(42);
    let b = generate_all(43);
    for ((name, x), (_, y)) in a.iter().zip(&b) {
        assert_ne!(
            table_fingerprint(&x.table),
            table_fingerprint(&y.table),
            "{name} ignored its seed"
        );
        let names_x: Vec<&str> = x
            .table
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let names_y: Vec<&str> = y
            .table
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(
            names_x, names_y,
            "{name}: schema must not depend on the seed"
        );
        assert_eq!(
            x.dag.edges(),
            y.dag.edges(),
            "{name}: DAG must not depend on the seed"
        );
    }
}
