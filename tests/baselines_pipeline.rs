//! Baseline-system integration tests on the generated datasets (§6.2):
//! the rule learners produce sensible output on real-shaped data, and the
//! XInsight-style explainer exhibits its quadratic output behaviour.

use baselines::{binarize_outcome, explanation_table, explanation_table_g, frl, ids, xinsight};
use table::fd::treatment_attrs;

fn cat_attrs(ds: &datagen::Dataset) -> Vec<usize> {
    (0..ds.table.ncols())
        .filter(|&a| a != ds.outcome && ds.table.column(a).dict().is_some())
        .filter(|&a| !ds.group_by.contains(&a))
        .collect()
}

#[test]
fn ids_learns_high_precision_rules_on_adult() {
    let ds = datagen::adult::generate(3_000, 83);
    let y = binarize_outcome(&ds.table, ds.outcome);
    let rules = ids(&ds.table, &y, &cat_attrs(&ds), 5, 0.05, 2);
    assert!(!rules.is_empty());
    for r in &rules {
        assert!(r.support >= 150, "τ = 0.05 of 3000 rows");
        assert!(r.precision >= 0.5, "majority-class rules");
        assert!(r.pattern.len() <= 2);
    }
}

#[test]
fn frl_is_monotone_on_so() {
    let ds = datagen::so::generate(3_000, 89);
    let y = binarize_outcome(&ds.table, ds.outcome);
    let list = frl(&ds.table, &y, &cat_attrs(&ds), 6, 0.05, 2);
    assert!(!list.rules.is_empty());
    for w in list.rules.windows(2) {
        assert!(w[0].prob >= w[1].prob - 1e-12, "falling property violated");
    }
    // Marital-independence sanity: the top rule should beat the base rate.
    let base = y.iter().filter(|&&b| b).count() as f64 / y.len() as f64;
    assert!(list.rules[0].prob > base);
}

#[test]
fn explanation_table_rules_reduce_loss_on_german() {
    let ds = datagen::german::generate(1_000, 97);
    let y = binarize_outcome(&ds.table, ds.outcome);
    let rules = explanation_table(&ds.table, &y, &cat_attrs(&ds), 5, 2);
    assert!(!rules.is_empty());
    for r in &rules {
        assert!(r.gain > 0.0);
        assert!((0.0..=1.0).contains(&r.rate));
    }
    // Gains are committed greedily, so non-increasing.
    for w in rules.windows(2) {
        assert!(w[0].gain >= w[1].gain - 1e-9);
    }
}

#[test]
fn explanation_table_g_differs_across_groups() {
    let ds = datagen::adult::generate(3_000, 101);
    let y = binarize_outcome(&ds.table, ds.outcome);
    let view = ds.query().run(&ds.table).unwrap();
    // Two grouping masks: blue-collar vs white-collar subpopulations.
    let cat = ds.table.attr("OccupationCategory").unwrap();
    let m1 = table::Pattern::single(table::Pred::eq(cat, "blue-collar"))
        .eval(&ds.table)
        .unwrap();
    let m2 = table::Pattern::single(table::Pred::eq(cat, "white-collar"))
        .eval(&ds.table)
        .unwrap();
    let per = explanation_table_g(&ds.table, &y, &cat_attrs(&ds), 3, 2, &view, &[m1, m2]);
    assert_eq!(per.len(), 2);
    assert!(!per[0].1.is_empty() && !per[1].1.is_empty());
}

#[test]
fn xinsight_output_grows_quadratically_on_so() {
    let ds = datagen::so::generate(2_500, 103);
    let view = ds.query().run(&ds.table).unwrap();
    let t_attrs = treatment_attrs(&ds.table, &ds.group_by, &[ds.outcome]);
    let findings = xinsight(&ds.table, &view, &ds.dag, &t_attrs, ds.outcome, 1);
    let m = view.num_groups();
    let pairs = m * (m - 1) / 2;
    // With top-1 per pair and non-degenerate data, most pairs yield a
    // finding — the Θ(m²) blowup of §6.2.
    assert!(
        findings.len() > pairs / 2,
        "{} findings for {} pairs",
        findings.len(),
        pairs
    );
    // Findings must reference valid groups and carry causal marks.
    for f in &findings {
        assert!(f.group_a < m && f.group_b < m);
    }
    assert!(findings.iter().any(|f| f.causal));
}

/// IDS on two more generator families (german's small-n many-attribute
/// shape, accidents' high-cardinality categoricals): the same support /
/// precision / width invariants must hold — the learner is not tuned to
/// any one schema.
#[test]
fn ids_invariants_hold_on_german_and_accidents() {
    for (ds, n) in [
        (datagen::german::generate(1_000, 109), 1_000usize),
        (datagen::accidents::generate(2_000, 113), 2_000),
    ] {
        let y = binarize_outcome(&ds.table, ds.outcome);
        let rules = ids(&ds.table, &y, &cat_attrs(&ds), 5, 0.05, 2);
        assert!(!rules.is_empty(), "{n} rows");
        for r in &rules {
            assert!(r.support >= n / 20, "τ = 0.05 of {n} rows");
            assert!(r.precision >= 0.5);
            assert!(r.pattern.len() <= 2);
        }
    }
}

/// FRL's falling property (non-increasing per-rule probability) and
/// better-than-base-rate head rule on adult and impus.
#[test]
fn frl_is_monotone_on_adult_and_impus() {
    for ds in [
        datagen::adult::generate(3_000, 127),
        datagen::impus::generate(3_000, 131),
    ] {
        let y = binarize_outcome(&ds.table, ds.outcome);
        let list = frl(&ds.table, &y, &cat_attrs(&ds), 6, 0.05, 2);
        assert!(!list.rules.is_empty());
        for w in list.rules.windows(2) {
            assert!(w[0].prob >= w[1].prob - 1e-12, "falling property violated");
        }
        let base = y.iter().filter(|&&b| b).count() as f64 / y.len() as f64;
        assert!(list.rules[0].prob > base, "head rule must beat base rate");
    }
}

/// Explanation-table greedy gains stay positive with valid rates on
/// accidents and impus. (Monotone gains are *not* asserted here: the
/// information-gain objective is not submodular, and on these schemas a
/// later rule over a fresh attribute can legitimately out-gain an
/// earlier commitment — german's monotone run above is a property of
/// that dataset, not of the algorithm.)
#[test]
fn explanation_table_reduces_loss_on_accidents_and_impus() {
    for ds in [
        datagen::accidents::generate(2_000, 137),
        datagen::impus::generate(2_000, 139),
    ] {
        let y = binarize_outcome(&ds.table, ds.outcome);
        let rules = explanation_table(&ds.table, &y, &cat_attrs(&ds), 5, 2);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.gain > 0.0);
            assert!((0.0..=1.0).contains(&r.rate));
        }
    }
}

/// XInsight's pairwise sweep on adult and german: findings reference
/// valid group pairs, carry causal marks, and appear for a substantial
/// share of the Θ(m²) pairs — the blowup CauSumX's k-sized summaries
/// avoid exists on every dataset shape, not just SO.
#[test]
fn xinsight_pairwise_findings_on_adult_and_german() {
    for ds in [
        datagen::adult::generate(2_000, 149),
        datagen::german::generate(1_000, 151),
    ] {
        let view = ds.query().run(&ds.table).unwrap();
        let t_attrs = treatment_attrs(&ds.table, &ds.group_by, &[ds.outcome]);
        let findings = xinsight(&ds.table, &view, &ds.dag, &t_attrs, ds.outcome, 1);
        let m = view.num_groups();
        let pairs = m * (m - 1) / 2;
        assert!(
            findings.len() > pairs / 2,
            "{} findings for {} pairs",
            findings.len(),
            pairs
        );
        for f in &findings {
            assert!(f.group_a < m && f.group_b < m);
        }
        assert!(findings.iter().any(|f| f.causal));
    }
}

#[test]
fn causumx_vs_rule_learners_different_targets() {
    // The §6.2 qualitative claim in testable form: IDS optimizes
    // prediction (high precision), CauSumX optimizes causal effect — on
    // the SO generator where YearsCoding correlates with but has smaller
    // causal effect than Education, CauSumX's EU treatment mentions
    // education/age/role/student while IDS may pick any high-precision
    // correlate.
    let ds = datagen::so::generate(4_000, 107);
    let cfg = causumx::ConfigBuilder::new()
        .k(3)
        .theta(1.0)
        .build()
        .unwrap();
    let summary = causumx::Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    let causal_attrs = [
        "Education",
        "Age",
        "Role",
        "Student",
        "Ethnicity",
        "Gender",
        "YearsCoding",
    ];
    for e in &summary.explanations {
        if let Some(t) = &e.positive {
            let disp = t.pattern.display(&ds.table);
            assert!(
                causal_attrs.iter().any(|a| disp.contains(a)),
                "positive treatment uses a causal attribute: {disp}"
            );
        }
    }
}
