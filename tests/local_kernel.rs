//! Equivalence guarantees of the subpopulation-local evaluation kernel.
//!
//! The local-kernel rework (projected bitsets, sparse t-block gathers,
//! hoisted TSS, single-factor inference, parallel level evaluation) must
//! be *behaviour-preserving*. These tests pin:
//!
//! 1. sparse-gather local estimation ([`EstimationContext::estimate_local`]
//!    on a [`Projector`]-projected mask) against the dense full-width scan
//!    ([`EstimationContext::estimate`]) — bit-identical, across all
//!    confounder mixes, with and without the §5.2(d) sampling cap, on both
//!    estimator backends;
//! 2. the projected lattice walk against the full-width cold-start walk
//!    (`use_estimation_cache = false`), including the paired
//!    positive+negative walk;
//! 3. parallel within-level evaluation against the serial walk — exact
//!    `TreatmentResult` ordering at every thread count, and end-to-end
//!    summary bit-identity through the session pipeline.

use proptest::prelude::*;

use causal::context::EstimationContext;
use causal::estimate::{CateOptions, EstimatorBackend};
use causal::Dag;
use causumx::{ConfigBuilder, Session};
use mining::treatment::{Direction, LatticeOptions, TreatmentMiner, TreatmentResult};
use table::bitset::{BitSet, Projector};
use table::{Table, TableBuilder};

/// Random-but-structured table: two categorical treatment candidates, one
/// numeric confounder, and an outcome with real effects plus noise.
fn build_table(cats_a: &[u8], cats_b: &[u8], nums: &[i64], noise: &[i64]) -> Table {
    let n = cats_a.len();
    let a: Vec<String> = cats_a.iter().map(|&v| format!("a{}", v % 3)).collect();
    let b: Vec<String> = cats_b.iter().map(|&v| format!("b{}", v % 2)).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            3.0 * (cats_a[i].is_multiple_of(3)) as i64 as f64
                - 2.0 * (cats_b[i] % 2 == 1) as i64 as f64
                + (nums[i] % 7) as f64 * 0.3
                + (noise[i] % 11) as f64 * 0.05
        })
        .collect();
    TableBuilder::new()
        .cat_owned("a", a)
        .unwrap()
        .cat_owned("b", b)
        .unwrap()
        .int("num", nums.to_vec())
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap()
}

fn dag() -> Dag {
    Dag::new(
        &["a", "b", "num", "y"],
        &[("num", "a"), ("a", "y"), ("b", "y"), ("num", "y")],
    )
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<i64>, Vec<i64>, Vec<bool>)> {
    (60usize..160).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(-20i64..20, n),
            prop::collection::vec(-100i64..100, n),
            prop::collection::vec(any::<bool>(), n),
        )
    })
}

proptest! {
    /// (1) `estimate_local` on the projected treatment mask is
    /// bit-identical to `estimate` on the full-width mask — every
    /// confounder mix, with and without sampling, both backends.
    #[test]
    fn sparse_gather_matches_dense_scan((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let n = table.nrows();
        let treated: Vec<bool> = ca.iter().map(|&v| v % 3 == 0).collect();
        let tbits = BitSet::from_mask(&treated);
        let sub_bits = BitSet::from_mask(&subpop);
        let projector = Projector::new(&sub_bits);
        let tlocal = projector.project(&tbits);

        for confounders in [vec![], vec![1], vec![2], vec![1, 2]] {
            for (backend, cap) in [
                (EstimatorBackend::Regression, None),
                (EstimatorBackend::Regression, Some(n / 2)),
                (EstimatorBackend::Ipw, None),
            ] {
                let opts = CateOptions { sample_cap: cap, backend, ..CateOptions::default() };
                let Some(ctx) =
                    EstimationContext::new(&table, Some(&sub_bits), 3, &confounders, &opts)
                else { continue };
                prop_assert_eq!(ctx.local_width(), sub_bits.count());
                let dense = ctx.estimate(&tbits);
                let sparse = ctx.estimate_local(&tlocal);
                match (dense, sparse) {
                    (Some(d), Some(s)) => {
                        prop_assert_eq!(d.cate.to_bits(), s.cate.to_bits(),
                            "cate {} vs {}", d.cate, s.cate);
                        let p_match = d.p_value.to_bits() == s.p_value.to_bits()
                            || (d.p_value.is_nan() && s.p_value.is_nan());
                        prop_assert!(p_match, "p {} vs {}", d.p_value, s.p_value);
                        prop_assert_eq!(d.n, s.n);
                        prop_assert_eq!(d.n_treated, s.n_treated);
                        prop_assert_eq!(d.n_control, s.n_control);
                    }
                    (d, s) => prop_assert_eq!(d.is_none(), s.is_none()),
                }
            }
        }
    }

    /// (2) The projected walk returns exactly what the full-width
    /// cold-start walk returns, for the paired positive+negative mining.
    #[test]
    fn projected_walk_matches_full_width_walk((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let dag = dag();
        let sub_bits = BitSet::from_mask(&subpop);

        let projected = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions::default());
        let full_width = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions {
            use_estimation_cache: false,
            ..LatticeOptions::default()
        });
        let a = projected.top_treatments_paired(&sub_bits, 3, true);
        let b = full_width.top_treatments_paired(&sub_bits, 3, true);
        prop_assert_eq!(a.stats.evaluated, b.stats.evaluated);
        prop_assert_eq!(a.stats.levels, b.stats.levels);
        prop_assert_eq!(fingerprint(&a.positive), fingerprint(&b.positive));
        prop_assert_eq!(fingerprint(&a.negative), fingerprint(&b.negative));
    }

    /// (3a) Parallel within-level evaluation preserves the exact
    /// `TreatmentResult` ordering of the serial walk.
    #[test]
    fn parallel_level_matches_serial_level((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let dag = dag();
        let sub_bits = BitSet::from_mask(&subpop);

        let serial = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions {
            level_parallelism: 1,
            ..LatticeOptions::default()
        });
        let (rs, ss) = serial.top_k_treatments(&sub_bits, Direction::Positive, 4);
        for threads in [2usize, 4] {
            let par = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions {
                level_parallelism: threads,
                ..LatticeOptions::default()
            });
            let (rp, sp) = par.top_k_treatments(&sub_bits, Direction::Positive, 4);
            prop_assert_eq!(sp.evaluated, ss.evaluated, "threads {}", threads);
            prop_assert_eq!(sp.levels, ss.levels);
            prop_assert_eq!(sp.contexts_built, ss.contexts_built);
            prop_assert_eq!(fingerprint(&rp), fingerprint(&rs), "threads {}", threads);
        }
    }
}

/// Exact (pattern, CATE bits, p bits, arms) sequence — order-sensitive.
fn fingerprint(ts: &[TreatmentResult]) -> Vec<(String, u64, u64, usize, usize)> {
    ts.iter()
        .map(|t| {
            (
                t.pattern.key(),
                t.cate.to_bits(),
                t.p_value.to_bits(),
                t.n_treated,
                t.n_control,
            )
        })
        .collect()
}

/// (3b) End-to-end: the session pipeline is bit-identical across
/// scheduler worker counts (serial, auto, and explicit oversubscription)
/// on realistic generated data.
#[test]
fn pipeline_bit_identical_across_level_parallelism() {
    let ds = datagen::so::generate(3_000, 11);
    let run = |threads: usize| {
        let cfg = ConfigBuilder::new().threads(threads).build().unwrap();
        Session::new(ds.table.clone(), ds.dag.clone(), cfg)
            .prepare(ds.query())
            .unwrap()
            .run()
    };
    let base = run(1);
    for threads in [0, 2, 3, 4] {
        let other = run(threads);
        assert_eq!(
            base.total_weight.to_bits(),
            other.total_weight.to_bits(),
            "threads={threads}"
        );
        assert_eq!(base.cate_evaluations, other.cate_evaluations);
        assert_eq!(base.covered, other.covered);
        assert_eq!(base.candidates, other.candidates);
        let keys = |s: &causumx::Summary| -> Vec<String> {
            s.explanations.iter().map(|e| e.grouping.key()).collect()
        };
        assert_eq!(keys(&base), keys(&other), "exact explanation order");
    }
}

/// The projection round-trip the walk relies on: projected atom
/// intersections and counts agree with full-width intersections restricted
/// to the subpopulation.
#[test]
fn projection_commutes_with_walk_algebra() {
    let n = 500;
    let mut sub = BitSet::new(n);
    let mut a = BitSet::new(n);
    let mut b = BitSet::new(n);
    for i in 0..n {
        if i % 3 != 0 {
            sub.insert(i);
        }
        if i % 2 == 0 {
            a.insert(i);
        }
        if i % 5 < 3 {
            b.insert(i);
        }
    }
    let p = Projector::new(&sub);
    let (la, lb) = (p.project(&a), p.project(&b));
    assert_eq!(la.count(), a.intersection_count(&sub));
    let mut ab = a.clone();
    ab.intersect_with(&b);
    let mut lab = la.clone();
    lab.intersect_with(&lb);
    assert_eq!(p.project(&ab), lab);
    assert_eq!(lab.count(), ab.intersection_count(&sub));
    let mut back = p.unproject(&lab);
    assert!(back.is_subset(&sub));
    back.intersect_with(&a); // no-op: already ⊆ a
    assert_eq!(back.count(), lab.count());
}
