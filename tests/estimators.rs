//! Estimator-backend cross-validation: the regression, IPW and matching
//! backends must agree on synthetic SCMs with known effects, and the whole
//! pipeline must run with either backend (§7's propensity-weighting
//! extension).

use causal::estimate::{estimate_cate, estimate_effect, CateOptions, EstimatorBackend};
use causal::ipw::{estimate_att_matching, estimate_cate_ipw};
use causumx::{CausumxConfig, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use table::{Table, TableBuilder};

/// Confounded SCM with tunable true effect and confounder strength.
fn scm(n: usize, effect: f64, conf_strength: f64, seed: u64) -> (Table, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut z = Vec::with_capacity(n);
    let mut t = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let zi: i64 = rng.gen_range(0..4);
        let ti = rng.gen_bool((0.15 + 0.2 * zi as f64).min(0.9));
        let noise: f64 = rng.gen_range(-1.0..1.0);
        z.push(zi);
        t.push(ti);
        y.push(effect * ti as i64 as f64 + conf_strength * zi as f64 + noise);
    }
    let table = TableBuilder::new()
        .int("z", z)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap();
    (table, t)
}

#[test]
fn three_backends_agree_on_known_effect() {
    for (effect, conf) in [(5.0, 3.0), (-4.0, 2.0), (0.0, 4.0)] {
        let (table, treated) = scm(8_000, effect, conf, 11);
        let opts = CateOptions::default();
        let reg = estimate_cate(&table, None, &treated, 1, &[0], &opts).unwrap();
        let ipw = estimate_cate_ipw(&table, None, &treated, 1, &[0], &opts).unwrap();
        let mat = estimate_att_matching(
            &table,
            None,
            &treated,
            1,
            &[0],
            &CateOptions {
                sample_cap: Some(2_000),
                ..opts.clone()
            },
        )
        .unwrap();
        for (name, est) in [("reg", reg.cate), ("ipw", ipw.cate), ("match", mat.cate)] {
            assert!(
                (est - effect).abs() < 0.6,
                "{name} estimate {est} far from truth {effect} (conf {conf})"
            );
        }
    }
}

#[test]
fn null_effect_not_significant() {
    let (table, treated) = scm(5_000, 0.0, 3.0, 13);
    let opts = CateOptions::default();
    let reg = estimate_cate(&table, None, &treated, 1, &[0], &opts).unwrap();
    assert!(
        reg.p_value > 0.01,
        "true-null effect flagged significant: {reg:?}"
    );
    let ipw = estimate_cate_ipw(&table, None, &treated, 1, &[0], &opts).unwrap();
    assert!(ipw.cate.abs() < 0.3);
}

#[test]
fn dispatcher_selects_backend() {
    let (table, treated) = scm(4_000, 6.0, 2.0, 17);
    let mut opts = CateOptions::default();
    let reg = estimate_effect(&table, None, &treated, 1, &[0], &opts).unwrap();
    opts.backend = EstimatorBackend::Ipw;
    let ipw = estimate_effect(&table, None, &treated, 1, &[0], &opts).unwrap();
    assert!((reg.cate - 6.0).abs() < 0.4);
    assert!((ipw.cate - 6.0).abs() < 0.6);
    assert_ne!(
        reg.cate, ipw.cate,
        "different backends, different estimators"
    );
}

#[test]
fn pipeline_runs_with_ipw_backend() {
    let ds = datagen::adult::generate(3_000, 19);
    let mut cfg = CausumxConfig::default();
    cfg.lattice.cate_opts.backend = EstimatorBackend::Ipw;
    cfg.theta = 0.5;
    let summary = Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(
        summary.covered > 0,
        "IPW-backed pipeline must produce output"
    );
    for e in &summary.explanations {
        assert!(e.has_treatment());
    }
}

#[test]
fn ipw_and_regression_pipelines_agree_on_direction() {
    let ds = datagen::so::generate(3_000, 23);
    let run = |backend| {
        let mut cfg = causumx::ConfigBuilder::new()
            .k(2)
            .theta(0.75)
            .build()
            .unwrap();
        cfg.lattice.cate_opts.backend = backend;
        Session::new(ds.table.clone(), ds.dag.clone(), cfg)
            .prepare(ds.query())
            .unwrap()
            .run()
    };
    let reg = run(EstimatorBackend::Regression);
    let ipw = run(EstimatorBackend::Ipw);
    // Both should find positive and negative treatments with sane signs.
    for s in [&reg, &ipw] {
        for e in &s.explanations {
            if let Some(t) = &e.positive {
                assert!(t.cate > 0.0);
            }
            if let Some(t) = &e.negative {
                assert!(t.cate < 0.0);
            }
        }
    }
}
