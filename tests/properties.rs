//! Property-based tests (proptest) on the core data structures and the
//! invariants the pipeline relies on.

use proptest::prelude::*;

use lpsolve::cover::{
    exhaustive_best, greedy_cover, randomized_rounding, solve_lp_relaxation, CoverInstance,
};
use lpsolve::simplex::{solve, ConstraintOp, LpProblem, LpStatus};
use stats::rank::kendall_tau;
use table::bitset::BitSet;
use table::pattern::{Op, Pattern, Pred};
use table::{GroupByAvgQuery, TableBuilder};

// ---------- BitSet vs naive reference ----------

proptest! {
    #[test]
    fn bitset_matches_naive_sets(
        a in prop::collection::vec(0usize..200, 0..64),
        b in prop::collection::vec(0usize..200, 0..64),
    ) {
        use std::collections::BTreeSet;
        let sa: BTreeSet<usize> = a.iter().copied().collect();
        let sb: BTreeSet<usize> = b.iter().copied().collect();
        let mut ba = BitSet::new(200);
        let mut bb = BitSet::new(200);
        for &x in &sa { ba.insert(x); }
        for &x in &sb { bb.insert(x); }

        prop_assert_eq!(ba.count(), sa.len());
        prop_assert_eq!(ba.intersection_count(&bb), sa.intersection(&sb).count());
        let mut u = ba.clone();
        u.union_with(&bb);
        prop_assert_eq!(u.count(), sa.union(&sb).count());
        prop_assert_eq!(ba.is_subset(&bb), sa.is_subset(&sb));
        prop_assert_eq!(ba.iter().collect::<Vec<_>>(), sa.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_mask_round_trip(mask in prop::collection::vec(any::<bool>(), 1..300)) {
        let b = BitSet::from_mask(&mask);
        prop_assert_eq!(b.to_mask(), mask);
    }
}

// ---------- Pattern evaluation ----------

fn arb_table_and_pattern() -> impl Strategy<Value = (Vec<u8>, Vec<i64>, u8, i64, bool)> {
    (
        prop::collection::vec(0u8..4, 10..120),
        prop::collection::vec(-50i64..50, 10..120),
        0u8..4,
        -50i64..50,
        any::<bool>(),
    )
}

proptest! {
    #[test]
    fn pattern_eval_matches_row_by_row((cats, nums, cat_val, num_thresh, use_lt) in arb_table_and_pattern()) {
        let n = cats.len().min(nums.len());
        let cat_strs: Vec<String> = cats[..n].iter().map(|c| format!("c{c}")).collect();
        let t = TableBuilder::new()
            .cat_owned("cat", cat_strs.clone()).unwrap()
            .int("num", nums[..n].to_vec()).unwrap()
            .build().unwrap();
        let op = if use_lt { Op::Lt } else { Op::Ge };
        let p = Pattern::new(vec![
            Pred::eq(0, format!("c{cat_val}").as_str()),
            Pred::cmp(1, op, num_thresh),
        ]);
        let mask = p.eval(&t).unwrap();
        for r in 0..n {
            let expect = cat_strs[r] == format!("c{cat_val}")
                && op.eval_f64(nums[r] as f64, num_thresh as f64);
            prop_assert_eq!(mask[r], expect, "row {}", r);
            prop_assert_eq!(p.matches_row(&t, r), expect);
        }
        prop_assert_eq!(p.support(&t).unwrap(), mask.iter().filter(|&&x| x).count());
    }

    #[test]
    fn adding_conjunct_shrinks_support(
        (cats, nums, cat_val, num_thresh, _) in arb_table_and_pattern()
    ) {
        let n = cats.len().min(nums.len());
        let cat_strs: Vec<String> = cats[..n].iter().map(|c| format!("c{c}")).collect();
        let t = TableBuilder::new()
            .cat_owned("cat", cat_strs).unwrap()
            .int("num", nums[..n].to_vec()).unwrap()
            .build().unwrap();
        let p1 = Pattern::single(Pred::eq(0, format!("c{cat_val}").as_str()));
        let p2 = p1.and(Pred::cmp(1, Op::Lt, num_thresh));
        prop_assert!(p2.support(&t).unwrap() <= p1.support(&t).unwrap());
    }
}

// ---------- Aggregate view invariants ----------

proptest! {
    #[test]
    fn groupby_avg_partition_invariants(
        groups in prop::collection::vec(0u8..6, 20..150),
        vals in prop::collection::vec(-100.0f64..100.0, 20..150),
    ) {
        let n = groups.len().min(vals.len());
        let g: Vec<String> = groups[..n].iter().map(|x| format!("g{x}")).collect();
        let t = TableBuilder::new()
            .cat_owned("g", g).unwrap()
            .float("y", vals[..n].to_vec()).unwrap()
            .build().unwrap();
        let view = GroupByAvgQuery::new(vec![0], 1).run(&t).unwrap();
        // Counts partition the rows.
        prop_assert_eq!(view.counts.iter().sum::<usize>(), n);
        // Weighted group averages reproduce the global average.
        let total: f64 = view.avgs.iter().zip(&view.counts).map(|(&a, &c)| a * c as f64).sum();
        let global: f64 = vals[..n].iter().sum();
        prop_assert!((total - global).abs() < 1e-6 * (1.0 + global.abs()));
        // Every row maps to a valid group.
        for &gid in &view.row_group {
            prop_assert!(gid < view.num_groups());
        }
    }
}

// ---------- Cover selection invariants ----------

fn arb_cover() -> impl Strategy<Value = CoverInstance> {
    (2usize..8, 2usize..10).prop_flat_map(|(m, l)| {
        (
            prop::collection::vec(0.0f64..10.0, l),
            prop::collection::vec(prop::collection::vec(any::<bool>(), m), l),
            1usize..4,
            0.0f64..1.0,
        )
            .prop_map(move |(weights, masks, k, theta)| CoverInstance {
                weights,
                covers: masks.iter().map(|m| BitSet::from_mask(m)).collect(),
                m,
                k,
                theta,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn selection_respects_constraints(inst in arb_cover()) {
        if let Some(sol) = exhaustive_best(&inst) {
            prop_assert!(sol.chosen.len() <= inst.k);
            prop_assert!(sol.coverage >= inst.required_coverage());
            // Exhaustive dominates greedy whenever greedy is feasible.
            if let Some(g) = greedy_cover(&inst) {
                if g.feasible {
                    prop_assert!(sol.total_weight >= g.total_weight - 1e-9);
                }
            }
        }
        if let Some(g) = solve_lp_relaxation(&inst) {
            // Fractional g respects the box and budget constraints.
            prop_assert!(g.iter().all(|&v| (-1e-7..=1.0 + 1e-7).contains(&v)));
            prop_assert!(g.iter().sum::<f64>() <= inst.k as f64 + 1e-6);
            if let Some(r) = randomized_rounding(&inst, &g, 16, 1) {
                prop_assert!(r.chosen.len() <= inst.k);
            }
        } else {
            // LP infeasible ⇒ ILP infeasible.
            prop_assert!(exhaustive_best(&inst).is_none());
        }
    }
}

// ---------- Simplex sanity on random bounded LPs ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn simplex_solution_is_feasible(
        c in prop::collection::vec(-5.0f64..5.0, 2..5),
        rows in prop::collection::vec((prop::collection::vec(0.0f64..3.0, 2..5), 1.0f64..10.0), 1..5),
    ) {
        let n = c.len();
        let mut p = LpProblem::new(n);
        p.objective = c;
        for (coefs, rhs) in &rows {
            let terms: Vec<(usize, f64)> = coefs.iter().take(n).enumerate().map(|(j, &v)| (j, v)).collect();
            p.add(terms, ConstraintOp::Le, *rhs);
        }
        for v in 0..n {
            p.with_upper_bound(v, 4.0);
        }
        let s = solve(&p);
        prop_assert_eq!(s.status, LpStatus::Optimal); // box-bounded, 0 feasible
        // Check primal feasibility.
        for (coefs, rhs) in &rows {
            let lhs: f64 = coefs.iter().take(n).zip(&s.x).map(|(a, b)| a * b).sum();
            prop_assert!(lhs <= rhs + 1e-6, "violated: {} > {}", lhs, rhs);
        }
        for &v in &s.x {
            prop_assert!((-1e-9..=4.0 + 1e-6).contains(&v));
        }
    }
}

// ---------- Kendall τ properties ----------

proptest! {
    #[test]
    fn kendall_tau_bounds_and_symmetry(
        x in prop::collection::vec(-100.0f64..100.0, 3..40),
        y in prop::collection::vec(-100.0f64..100.0, 3..40),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let Some(t) = kendall_tau(x, y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&t));
            let t2 = kendall_tau(y, x).unwrap();
            prop_assert!((t - t2).abs() < 1e-12);
            // Perfect self-agreement.
            prop_assert!((kendall_tau(x, x).unwrap() - 1.0).abs() < 1e-12);
            // Negating one side negates τ.
            let neg: Vec<f64> = y.iter().map(|v| -v).collect();
            if let Some(tn) = kendall_tau(x, &neg) {
                prop_assert!((t + tn).abs() < 1e-9);
            }
        }
    }
}

// ---------- d-separation: Bayes-ball vs path enumeration ----------

/// Reference d-separation by explicit path enumeration: every undirected
/// path between x and y must be blocked by Z (a non-collider in Z, or a
/// collider whose closure — itself plus descendants — avoids Z).
fn d_separated_reference(
    dag: &causal::Dag,
    x: usize,
    y: usize,
    z: &std::collections::BTreeSet<usize>,
) -> bool {
    fn blocked(dag: &causal::Dag, path: &[usize], z: &std::collections::BTreeSet<usize>) -> bool {
        for w in 1..path.len() - 1 {
            let (a, b, c) = (path[w - 1], path[w], path[w + 1]);
            let collider = dag.has_edge(a, b) && dag.has_edge(c, b);
            if collider {
                // Blocked unless b or a descendant of b is in Z.
                let mut act = z.contains(&b);
                for d in dag.descendants(b) {
                    act |= z.contains(&d);
                }
                if !act {
                    return true;
                }
            } else if z.contains(&b) {
                return true;
            }
        }
        false
    }
    // Enumerate simple undirected paths by DFS.
    fn dfs(
        dag: &causal::Dag,
        cur: usize,
        y: usize,
        path: &mut Vec<usize>,
        z: &std::collections::BTreeSet<usize>,
    ) -> bool {
        if cur == y {
            return !blocked(dag, path, z); // found an ACTIVE path
        }
        for nxt in 0..dag.len() {
            let adj = dag.has_edge(cur, nxt) || dag.has_edge(nxt, cur);
            if adj && !path.contains(&nxt) {
                path.push(nxt);
                if dfs(dag, nxt, y, path, z) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
    let mut path = vec![x];
    !dfs(dag, x, y, &mut path, z)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn bayes_ball_matches_path_enumeration(
        edge_bits in prop::collection::vec(any::<bool>(), 21), // C(7,2)
        x in 0usize..7,
        y in 0usize..7,
        z_bits in prop::collection::vec(any::<bool>(), 7),
    ) {
        prop_assume!(x != y);
        let names: Vec<String> = (0..7).map(|i| format!("v{i}")).collect();
        // Edges only i → j for i < j ⇒ acyclic by construction.
        let mut edges = Vec::new();
        let mut bit = 0;
        for i in 0..7usize {
            for j in i + 1..7 {
                if edge_bits[bit] {
                    edges.push((names[i].clone(), names[j].clone()));
                }
                bit += 1;
            }
        }
        let dag = causal::Dag::new(&names, &edges).unwrap();
        let z: std::collections::BTreeSet<usize> = (0..7)
            .filter(|&i| z_bits[i] && i != x && i != y)
            .collect();
        let zs: Vec<usize> = z.iter().copied().collect();
        let fast = dag.d_separated(&[x], &[y], &zs);
        let slow = d_separated_reference(&dag, x, y, &z);
        prop_assert_eq!(fast, slow, "x={} y={} z={:?} edges={:?}", x, y, z, dag.edges());
    }
}

// ---------- FD split partitions the schema ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fd_split_partitions_schema(
        keys in prop::collection::vec(0u8..5, 15..60),
        dep_noise in prop::collection::vec(any::<bool>(), 15..60),
    ) {
        let n = keys.len().min(dep_noise.len());
        let g: Vec<String> = keys[..n].iter().map(|k| format!("k{k}")).collect();
        // `det` is FD-determined by the key; `free` is not (depends on row).
        let det: Vec<String> = keys[..n].iter().map(|k| format!("d{}", k / 2)).collect();
        let free: Vec<String> = dep_noise[..n]
            .iter()
            .enumerate()
            .map(|(i, &b)| format!("f{}", (i % 3) + b as usize))
            .collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = TableBuilder::new()
            .cat_owned("g", g).unwrap()
            .cat_owned("det", det).unwrap()
            .cat_owned("free", free).unwrap()
            .float("y", y).unwrap()
            .build().unwrap();
        let closed = table::fd::fd_closure(&t, &[0], &[3]);
        let treat = table::fd::treatment_attrs(&t, &[0], &[3]);
        // Disjoint and jointly exhaustive over non-key, non-outcome attrs.
        for a in &closed {
            prop_assert!(!treat.contains(a));
        }
        let mut all: Vec<usize> = closed.iter().chain(treat.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, vec![1, 2]);
        // `det` must always be in the closure (constructed as key-determined).
        prop_assert!(closed.contains(&1));
    }

    #[test]
    fn pattern_merge_commutative_and_idempotent(
        a_attr in 0usize..2,
        a_val in 0u8..4,
        b_attr in 0usize..2,
        b_val in 0u8..4,
    ) {
        let pa = Pattern::single(Pred::eq(a_attr, format!("v{a_val}").as_str()));
        let pb = Pattern::single(Pred::eq(b_attr, format!("v{b_val}").as_str()));
        prop_assert_eq!(pa.merge(&pb), pb.merge(&pa));
        let m = pa.merge(&pb);
        prop_assert_eq!(m.merge(&pa), m.clone());
        prop_assert_eq!(pa.merge(&pa), pa);
    }
}
