//! Concurrency contract of the service layer: one shared [`Session`]
//! behind an `Arc` serves N threads × M queries through the
//! prepared-statement cache and every response is bit-identical to a
//! clean serial session answering the same statements. Also pins the
//! `Send + Sync` bounds the whole design rests on.

use std::sync::Arc;

use causumx::{CausumxConfig, ConfigBuilder, Session, Summary};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn session_types_are_send_sync() {
    assert_send_sync::<Session>();
    assert_send_sync::<causumx::PreparedQuery<'static>>();
    assert_send_sync::<causumx::PreparedCacheStats>();
    assert_send_sync::<serve::Handler>();
    assert_send_sync::<serve::AdmissionQueue>();
}

fn config() -> CausumxConfig {
    // Light per-query mining (single-literal lattice) keeps the hammer
    // fast in debug builds; the bit-identity contract is independent of
    // these knobs.
    ConfigBuilder::new()
        .threads(1)
        .max_level(1)
        .prepared_statements(8)
        .build()
        .unwrap()
}

const STATEMENTS: [&str; 3] = [
    "SELECT Country, AVG(Salary) FROM so GROUP BY Country",
    "SELECT Continent, AVG(Salary) FROM so GROUP BY Continent",
    "SELECT Country, AVG(Salary) FROM so WHERE Age < 40 GROUP BY Country",
];

fn fingerprint(s: &Summary) -> (u64, usize, usize, usize, String) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.candidates,
        s.cate_evaluations,
        format!("{:?}", s.explanations),
    )
}

#[test]
fn shared_session_hammer_is_bit_identical_to_serial() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 9;

    let ds = datagen::so::generate(1_500, 11);

    // Serial reference: a fresh session, every statement once, no cache.
    let reference = Session::new(ds.table.clone(), ds.dag.clone(), config());
    let expected: Vec<_> = STATEMENTS
        .iter()
        .map(|sql| fingerprint(&reference.sql(sql).unwrap().run()))
        .collect();

    // Hammer: THREADS threads, each running PER_THREAD queries round-robin
    // over the statement pool, all through one shared session's cache.
    let shared = Arc::new(Session::new(ds.table, ds.dag, config()));
    let results: Vec<(usize, Vec<(usize, (u64, usize, usize, usize, String))>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for q in 0..PER_THREAD {
                            let stmt = (t + q) % STATEMENTS.len();
                            let prepared = shared.sql_cached(STATEMENTS[stmt]).unwrap();
                            out.push((stmt, fingerprint(&prepared.run())));
                        }
                        (t, out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    for (t, observations) in &results {
        for (stmt, got) in observations {
            assert_eq!(
                got, &expected[*stmt],
                "thread {t} statement {stmt}: concurrent result diverged from serial"
            );
        }
    }

    // Accounting: every query either hit or missed; views were built only
    // on misses; at most one racing miss-group per statement escaped the
    // cache, and the steady state holds all three entries.
    let stats = shared.prepared_cache_stats();
    let total = THREADS * PER_THREAD;
    assert_eq!(stats.hits + stats.misses, total);
    assert!(
        stats.misses >= STATEMENTS.len(),
        "each distinct statement must miss at least once"
    );
    assert!(
        stats.misses <= STATEMENTS.len() * THREADS,
        "misses are bounded by racing first-preparations: {}",
        stats.misses
    );
    assert_eq!(stats.len, STATEMENTS.len());
    assert_eq!(stats.evictions, 0);
    let counters = shared.counters();
    assert_eq!(counters.views_materialized, stats.misses);
    assert_eq!(counters.runs, total);
}
