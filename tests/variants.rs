//! Cross-variant integration tests: Brute-Force vs CauSumX vs
//! Greedy-Last-Step dominance and consistency properties (§6.4).

use causumx::{select_candidates, CausumxConfig, ConfigBuilder, SelectionMethod, Session};

/// Bind a dataset to a fresh session (cloning so `ds` stays usable).
fn session(ds: &datagen::Dataset, cfg: CausumxConfig) -> Session {
    Session::new(ds.table.clone(), ds.dag.clone(), cfg)
}

fn small_config() -> CausumxConfig {
    ConfigBuilder::new()
        .k(3)
        .theta(0.75)
        .max_level(2)
        .build()
        .unwrap()
}

#[test]
fn brute_force_dominates_on_synthetic() {
    let ds = datagen::synthetic::generate(
        datagen::synthetic::SynthParams {
            n: 1_500,
            n_grouping: 2,
            n_treatment: 3,
            tuples_per_group: 4,
        },
        5,
    );
    let s = session(&ds, small_config());
    let prepared = s.prepare(ds.query()).unwrap();
    let fast = prepared.run();
    let brute = prepared.run_brute_force();
    assert!(
        brute.total_weight >= fast.total_weight - 1e-6,
        "brute {} < causumx {}",
        brute.total_weight,
        fast.total_weight
    );
    // Both must satisfy the same coverage constraint when feasible.
    if fast.feasible {
        assert!(brute.feasible);
    }
}

#[test]
fn brute_force_lp_between_heuristic_and_exact() {
    let ds = datagen::synthetic::generate(
        datagen::synthetic::SynthParams {
            n: 1_200,
            n_grouping: 2,
            n_treatment: 2,
            tuples_per_group: 4,
        },
        9,
    );
    let s = session(&ds, small_config());
    let prepared = s.prepare(ds.query()).unwrap();
    let exact = prepared.run_brute_force();
    let lp = prepared.run_brute_force_lp();
    // LP rounding over the same exhaustive candidates cannot beat exact.
    assert!(lp.total_weight <= exact.total_weight + 1e-6);
    // And with 64 rounds on a small instance it should land close.
    assert!(
        lp.total_weight >= 0.5 * exact.total_weight,
        "lp {} far below exact {}",
        lp.total_weight,
        exact.total_weight
    );
}

#[test]
fn deterministic_given_seed() {
    let ds = datagen::so::generate(2_500, 41);
    let s = session(&ds, small_config());
    let prepared = s.prepare(ds.query()).unwrap();
    let a = prepared.run();
    let b = prepared.run();
    assert_eq!(a.total_weight, b.total_weight);
    assert_eq!(a.covered, b.covered);
    let keys = |s: &causumx::Summary| {
        s.explanations
            .iter()
            .map(|e| e.grouping.key())
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&a), keys(&b));
}

#[test]
fn greedy_never_exceeds_exhaustive_same_candidates() {
    let ds = datagen::adult::generate(2_500, 43);
    let s = session(&ds, small_config());
    let prepared = s.prepare(ds.query()).unwrap();
    let candidates = prepared.mine_candidates();
    let greedy = prepared.select(&candidates, SelectionMethod::Greedy);
    let exact = prepared.select(&candidates, SelectionMethod::Exhaustive);
    if exact.feasible {
        assert!(exact.total_weight >= greedy.total_weight - 1e-6);
    }
}

#[test]
fn k_monotonicity_of_exact_selection() {
    // Larger k can only improve the exact optimum.
    let ds = datagen::so::generate(2_500, 47);
    let base = small_config();
    let sess = session(&ds, base.clone());
    let candidates = sess.prepare(ds.query()).unwrap().mine_candidates();
    let mut prev = 0.0;
    for k in 1..=5 {
        let mut cfg = base.clone();
        cfg.k = k;
        let s = select_candidates(&cfg, &candidates, SelectionMethod::Exhaustive);
        assert!(
            s.total_weight >= prev - 1e-9,
            "k={k}: {} < {}",
            s.total_weight,
            prev
        );
        prev = s.total_weight;
    }
}

#[test]
fn theta_tightening_never_raises_exact_weight() {
    let ds = datagen::so::generate(2_500, 53);
    let base = small_config();
    let sess = session(&ds, base.clone());
    let candidates = sess.prepare(ds.query()).unwrap().mine_candidates();
    let mut prev = f64::INFINITY;
    for theta in [0.0, 0.5, 0.9] {
        let mut cfg = base.clone();
        cfg.theta = theta;
        let s = select_candidates(&cfg, &candidates, SelectionMethod::Exhaustive);
        if s.feasible {
            assert!(s.total_weight <= prev + 1e-9);
            prev = s.total_weight;
        }
    }
}
