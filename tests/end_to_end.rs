//! End-to-end integration tests: the full Algorithm-1 pipeline on every
//! dataset generator, checking the Definition 4.5 contract on the output.

use causumx::{CausumxConfig, ConfigBuilder, SelectionMethod, Session, Summary};
use table::bitset::BitSet;

/// Bind a dataset to a fresh session (cloning so `ds` stays usable).
fn session(ds: &datagen::Dataset, cfg: CausumxConfig) -> Session {
    Session::new(ds.table.clone(), ds.dag.clone(), cfg)
}

fn check_contract(ds: &datagen::Dataset, cfg: &CausumxConfig, summary: &Summary) {
    // Size constraint.
    assert!(
        summary.explanations.len() <= cfg.k,
        "|Φ| = {} > k = {}",
        summary.explanations.len(),
        cfg.k
    );
    // Recompute coverage from scratch and compare.
    let view = ds.query().run(&ds.table).unwrap();
    let mut union = BitSet::new(view.num_groups());
    for e in &summary.explanations {
        let cov = view.coverage(&ds.table, &e.grouping).unwrap();
        assert_eq!(
            cov,
            e.coverage,
            "stored coverage must match recomputed coverage for {}",
            e.grouping.display(&ds.table)
        );
        union.union_with(&cov);
    }
    assert_eq!(union.count(), summary.covered, "covered count mismatch");
    // Feasibility flag consistent with θ.
    let required = (cfg.theta * summary.m as f64).ceil() as usize;
    assert_eq!(
        summary.feasible,
        summary.covered >= required && summary.covered > 0
    );
    // Incomparability: no two selected explanations share a coverage set.
    for i in 0..summary.explanations.len() {
        for j in i + 1..summary.explanations.len() {
            assert_ne!(
                summary.explanations[i].coverage, summary.explanations[j].coverage,
                "incomparability constraint violated"
            );
        }
    }
    // Weights are |CATE⁺| + |CATE⁻| and treatments pass the p-value gate.
    for e in &summary.explanations {
        let mut w = 0.0;
        if let Some(t) = &e.positive {
            assert!(t.cate > 0.0, "positive treatment must have positive CATE");
            assert!(t.p_value <= cfg.lattice.max_p_value * (1.0 + 1e-9));
            w += t.cate.abs();
        }
        if let Some(t) = &e.negative {
            assert!(t.cate < 0.0);
            assert!(t.p_value <= cfg.lattice.max_p_value * (1.0 + 1e-9));
            w += t.cate.abs();
        }
        assert!((e.weight - w).abs() < 1e-9);
        assert!(
            e.has_treatment(),
            "selected explanations must carry a treatment"
        );
    }
    let total: f64 = summary.explanations.iter().map(|e| e.weight).sum();
    assert!((total - summary.total_weight).abs() < 1e-6);
}

#[test]
fn so_pipeline_contract() {
    let ds = datagen::so::generate(4_000, 3);
    let cfg = ConfigBuilder::new().k(3).theta(1.0).build().unwrap();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    assert!(summary.feasible, "SO at θ=1 must be coverable: {summary:?}");
    check_contract(&ds, &cfg, &summary);
}

#[test]
fn adult_pipeline_contract() {
    let ds = datagen::adult::generate(4_000, 5);
    let cfg = CausumxConfig::default();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    assert!(summary.feasible);
    check_contract(&ds, &cfg, &summary);
}

#[test]
fn german_pipeline_contract_no_fds() {
    let ds = datagen::german::generate(1_000, 7);
    let cfg = ConfigBuilder::new().theta(0.4).build().unwrap();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    check_contract(&ds, &cfg, &summary);
    // German grouping patterns are per-group (no FDs): coverage 1 each.
    for e in &summary.explanations {
        assert_eq!(e.coverage.count(), 1);
    }
}

#[test]
fn impus_pipeline_contract() {
    let ds = datagen::impus::generate(6_000, 11);
    let cfg = CausumxConfig::default();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    check_contract(&ds, &cfg, &summary);
}

#[test]
fn accidents_pipeline_contract() {
    let ds = datagen::accidents::generate(6_000, 13);
    let cfg = CausumxConfig::default();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    assert!(summary.feasible);
    check_contract(&ds, &cfg, &summary);
}

#[test]
fn synthetic_recovers_ground_truth_treatment() {
    // In the synthetic schema the best positive atomic treatment within
    // any grouping bucket is T1 = 5 or a conjunction extending it
    // (true CATE +2.5 per Datagen's analytic formula).
    let ds = datagen::synthetic::generate(
        datagen::synthetic::SynthParams {
            n: 2_000,
            n_grouping: 2,
            n_treatment: 2,
            tuples_per_group: 4,
        },
        17,
    );
    let cfg = ConfigBuilder::new().k(4).theta(0.5).build().unwrap();
    let summary = session(&ds, cfg.clone()).prepare(ds.query()).unwrap().run();
    check_contract(&ds, &cfg, &summary);
    let e = &summary.explanations[0];
    let pos = e.positive.as_ref().expect("positive treatment");
    let disp = pos.pattern.display(&ds.table);
    assert!(
        disp.contains("T1 = 5") || disp.contains("T2 = 1"),
        "expected a ground-truth-optimal atom, got {disp}"
    );
    // Estimated CATE near the analytic value for whichever atoms appear.
    assert!(pos.cate > 2.0, "cate = {}", pos.cate);
}

#[test]
fn rendering_nonempty_for_feasible_summary() {
    let ds = datagen::so::generate(3_000, 19);
    let cfg = CausumxConfig::default();
    let s = session(&ds, cfg);
    let prepared = s.prepare(ds.query()).unwrap();
    let summary = prepared.run();
    let text = prepared.report(&summary).render_text();
    assert!(text.contains("effect size"));
    assert!(text.contains("coverage"));
}

#[test]
fn where_clause_respected() {
    // Restrict the SO query to Europe via WHERE; the resulting view only
    // has European countries and explanations only cover those.
    let ds = datagen::so::generate(4_000, 23);
    let cont = ds.table.attr("Continent").unwrap();
    let query = ds
        .query()
        .with_where(table::Pattern::single(table::Pred::eq(cont, "Europe")));
    let view = query.run(&ds.table).unwrap();
    assert!(view.num_groups() < 20);
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = session(&ds, cfg).prepare(query).unwrap().run();
    assert!(summary.m == view.num_groups());
    assert!(summary.covered <= summary.m);
}

#[test]
fn positive_only_mode() {
    let ds = datagen::so::generate(3_000, 29);
    let cfg = ConfigBuilder::new().mine_negative(false).build().unwrap();
    let summary = session(&ds, cfg).prepare(ds.query()).unwrap().run();
    for e in &summary.explanations {
        assert!(e.negative.is_none());
        assert!(e.positive.is_some());
    }
}

#[test]
fn selection_methods_agree_on_structure() {
    let ds = datagen::adult::generate(3_000, 31);
    let cfg = CausumxConfig::default();
    let s = session(&ds, cfg);
    let prepared = s.prepare(ds.query()).unwrap();
    let candidates = prepared.mine_candidates();
    let lp = prepared.select(&candidates, SelectionMethod::LpRounding);
    let greedy = prepared.select(&candidates, SelectionMethod::Greedy);
    let exact = prepared.select(&candidates, SelectionMethod::Exhaustive);
    // The exact optimum dominates both heuristics (when feasible).
    if exact.feasible {
        assert!(exact.total_weight >= lp.total_weight - 1e-6);
        assert!(exact.total_weight >= greedy.total_weight - 1e-6);
    }
}
