//! Workspace-surface smoke test: the public API contract of the
//! quick-start in `crates/core/src/lib.rs`, pinned independently of the
//! doctest so a docs edit can never silently drop the guarantee.

use causumx::{Causumx, CausumxConfig};
use table::{GroupByAvgQuery, TableBuilder};

/// The doctest's toy table: country → continent is an FD; education
/// drives salary.
fn toy() -> (table::Table, causal::Dag, GroupByAvgQuery) {
    let table = TableBuilder::new()
        .cat(
            "country",
            &[
                "US", "US", "US", "US", "FR", "FR", "FR", "FR", "IN", "IN", "IN", "IN",
            ],
        )
        .unwrap()
        .cat(
            "continent",
            &[
                "NA", "NA", "NA", "NA", "EU", "EU", "EU", "EU", "Asia", "Asia", "Asia", "Asia",
            ],
        )
        .unwrap()
        .cat(
            "education",
            &[
                "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc",
            ],
        )
        .unwrap()
        .float(
            "salary",
            vec![
                120.0, 80.0, 125.0, 82.0, 90.0, 60.0, 95.0, 61.0, 40.0, 20.0, 42.0, 21.0,
            ],
        )
        .unwrap()
        .build()
        .unwrap();
    let dag = causal::Dag::new(
        &["country", "continent", "education", "salary"],
        &[("country", "salary"), ("education", "salary")],
    )
    .unwrap();
    (table, dag, GroupByAvgQuery::new(vec![0], 3))
}

#[test]
fn quickstart_contract_covered_groups() {
    let (table, dag, query) = toy();
    let mut config = CausumxConfig::default();
    config.k = 2;
    config.theta = 1.0;
    config.lattice.cate_opts.min_arm = 2; // tiny toy data
    let summary = Causumx::new(&table, &dag, query, config.clone())
        .run()
        .unwrap();

    // The headline contract from the crate-level doctest.
    assert!(summary.covered > 0, "toy run must cover at least one group");

    // Definition 4.5 shape: at most k explanations, coverage accounting
    // consistent, and the θ = 1 constraint reported faithfully.
    assert!(summary.explanations.len() <= config.k);
    assert_eq!(summary.m, 3, "three countries → three output groups");
    assert!(summary.covered <= summary.m);
    assert_eq!(summary.feasible, summary.covered >= summary.m);
    assert!(summary.total_weight >= 0.0);
    assert!(
        summary.explanations.iter().all(|e| e.has_treatment()),
        "selected explanations must carry a treatment pattern"
    );
}

#[test]
fn quickstart_is_deterministic() {
    let (table, dag, query) = toy();
    let mut config = CausumxConfig::default();
    config.k = 2;
    config.theta = 1.0;
    config.lattice.cate_opts.min_arm = 2;
    let a = Causumx::new(&table, &dag, query.clone(), config.clone())
        .run()
        .unwrap();
    let b = Causumx::new(&table, &dag, query, config).run().unwrap();
    assert_eq!(a.covered, b.covered);
    assert_eq!(a.total_weight, b.total_weight);
    assert_eq!(a.explanations.len(), b.explanations.len());
}
