//! Workspace-surface smoke test: the public API contract of the
//! quick-start in `crates/core/src/lib.rs`, pinned independently of the
//! doctest so a docs edit can never silently drop the guarantee — plus
//! the compatibility guarantee that the deprecated one-shot `Causumx`
//! shim keeps compiling and behaving identically for one release.

use causumx::{ConfigBuilder, Session};
use table::{GroupByAvgQuery, TableBuilder};

/// The doctest's toy table: country → continent is an FD; education
/// drives salary.
fn toy() -> (table::Table, causal::Dag, GroupByAvgQuery) {
    let table = TableBuilder::new()
        .cat(
            "country",
            &[
                "US", "US", "US", "US", "FR", "FR", "FR", "FR", "IN", "IN", "IN", "IN",
            ],
        )
        .unwrap()
        .cat(
            "continent",
            &[
                "NA", "NA", "NA", "NA", "EU", "EU", "EU", "EU", "Asia", "Asia", "Asia", "Asia",
            ],
        )
        .unwrap()
        .cat(
            "education",
            &[
                "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc",
            ],
        )
        .unwrap()
        .float(
            "salary",
            vec![
                120.0, 80.0, 125.0, 82.0, 90.0, 60.0, 95.0, 61.0, 40.0, 20.0, 42.0, 21.0,
            ],
        )
        .unwrap()
        .build()
        .unwrap();
    let dag = causal::Dag::new(
        &["country", "continent", "education", "salary"],
        &[("country", "salary"), ("education", "salary")],
    )
    .unwrap();
    (table, dag, GroupByAvgQuery::new(vec![0], 3))
}

#[test]
fn quickstart_contract_covered_groups() {
    let (table, dag, query) = toy();
    let config = ConfigBuilder::new()
        .k(2)
        .theta(1.0)
        .min_arm(2) // tiny toy data
        .build()
        .unwrap();
    let session = Session::new(table, dag, config.clone());
    let summary = session.prepare(query).unwrap().run();

    // The headline contract from the crate-level doctest.
    assert!(summary.covered > 0, "toy run must cover at least one group");

    // Definition 4.5 shape: at most k explanations, coverage accounting
    // consistent, and the θ = 1 constraint reported faithfully.
    assert!(summary.explanations.len() <= config.k);
    assert_eq!(summary.m, 3, "three countries → three output groups");
    assert!(summary.covered <= summary.m);
    assert_eq!(summary.feasible, summary.covered >= summary.m);
    assert!(summary.total_weight >= 0.0);
    assert!(
        summary.explanations.iter().all(|e| e.has_treatment()),
        "selected explanations must carry a treatment pattern"
    );
}

#[test]
fn quickstart_is_deterministic() {
    let (table, dag, query) = toy();
    let config = ConfigBuilder::new()
        .k(2)
        .theta(1.0)
        .min_arm(2)
        .build()
        .unwrap();
    let session = Session::new(table, dag, config);
    let prepared = session.prepare(query).unwrap();
    let a = prepared.run();
    let b = prepared.run();
    assert_eq!(a.covered, b.covered);
    assert_eq!(a.total_weight, b.total_weight);
    assert_eq!(a.explanations.len(), b.explanations.len());
}

/// The deprecated one-shot entry point must keep compiling and return the
/// same result as the session it wraps.
#[test]
#[allow(deprecated)]
fn deprecated_causumx_shim_still_works() {
    use causumx::Causumx;
    let (table, dag, query) = toy();
    let config = ConfigBuilder::new()
        .k(2)
        .theta(1.0)
        .min_arm(2)
        .build()
        .unwrap();
    let old = Causumx::new(&table, &dag, query.clone(), config.clone())
        .run()
        .unwrap();
    let new = Session::new(table, dag, config)
        .prepare(query)
        .unwrap()
        .run();
    assert_eq!(old.covered, new.covered);
    assert_eq!(old.total_weight.to_bits(), new.total_weight.to_bits());
    assert_eq!(old.cate_evaluations, new.cate_evaluations);
}
