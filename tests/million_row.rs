//! Million-row end-to-end smoke test (`#[ignore]`-gated).
//!
//! Runs the full pipeline — synthetic generation, session preparation,
//! grouping mining, the scheduler-driven lattice walk, and LP selection —
//! on a 1 M-row [`datagen::synthetic`] instance, and hard-asserts the
//! result against a committed baseline: the exact `cate_evaluations`
//! count, the exact `total_weight` bit pattern, and a peak-RSS ceiling.
//!
//! It is too slow for the per-PR gate (`perf_smoke --quick` covers that),
//! so it is ignored by default; CI runs it weekly and on demand via
//!
//! ```text
//! cargo test --release --test million_row -- --ignored
//! ```
//!
//! If an intentional algorithm change shifts the counters, re-run the
//! test, confirm the shift is expected, and update the constants below
//! in the same commit.

use causumx::{ConfigBuilder, Session};
use datagen::synthetic::{self, SynthParams};

/// Committed baseline for 1 M rows × 1 000 groups (`tuples_per_group =
/// 1_000` — the default of 4 would mean 250 000 groups whose bitsets
/// alone need tens of GB; a fixed group count is also what the paper's
/// scalability sweep scales), seed 42, default config with
/// `threads = 0` (auto). Recorded on the unified-scheduler
/// implementation; bit-identical at any worker count by the
/// determinism contract.
const BASELINE_CATE_EVALUATIONS: usize = 1438;
const BASELINE_TOTAL_WEIGHT: f64 = 61.039941878153925;

/// Peak-RSS ceiling in MiB. Measured ≈ 260 MiB for the whole process
/// (table + view + group bitsets + estimation contexts at 1 M rows ×
/// 1 000 groups); the bound leaves ~2× headroom so only a real memory
/// regression — not allocator noise — trips it.
const PEAK_RSS_CEILING_MB: f64 = 512.0;

#[test]
#[ignore = "1M-row scale: run with --release -- --ignored (weekly CI / on demand)"]
fn million_row_pipeline_matches_baseline() {
    let params = SynthParams {
        n: 1_000_000,
        tuples_per_group: 1_000,
        ..SynthParams::default()
    };
    let ds = synthetic::generate(params, 42);
    let cfg = ConfigBuilder::new().threads(0).build().unwrap();
    let summary = Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(ds.query())
        .unwrap()
        .run();

    assert!(summary.feasible, "selection must be feasible: {summary:?}");
    assert_eq!(
        summary.cate_evaluations, BASELINE_CATE_EVALUATIONS,
        "cate_evaluations drifted from committed baseline"
    );
    assert_eq!(
        summary.total_weight.to_bits(),
        BASELINE_TOTAL_WEIGHT.to_bits(),
        "total_weight not bit-identical to committed baseline: {} vs {}",
        summary.total_weight,
        BASELINE_TOTAL_WEIGHT,
    );

    if let Some(rss) = bench::peak_rss_mb() {
        assert!(
            rss < PEAK_RSS_CEILING_MB,
            "peak RSS {rss} MiB exceeds documented ceiling {PEAK_RSS_CEILING_MB} MiB"
        );
        eprintln!("[million_row] peak RSS {rss} MiB (ceiling {PEAK_RSS_CEILING_MB} MiB)");
    }
}
