//! Full-pipeline bit-identity across scheduler worker counts.
//!
//! The unified work-stealing scheduler replaces the old exclusive
//! cross-pattern / within-level thread pools, so *one* contract now
//! covers every parallel path: for any worker count the pipeline summary
//! must be bit-identical (`f64::to_bits`) to the `threads = 1` serial
//! run. This suite pins that contract over a matrix of
//!
//! * worker counts `{1, 2, 4, 8}` — including counts far above this
//!   host's cores (explicit counts are honored verbatim, so
//!   oversubscription is exercised on any machine),
//! * workload shapes the scheduler must load-balance differently:
//!   many skewed grouping patterns, one giant pattern dominating the
//!   work, tiny/empty subpopulations, and groups emptied by a WHERE
//!   clause before mining,
//! * estimation-layer ablations: confounder panel on/off and the
//!   estimation cache on/off (sharded per-pattern state must not leak
//!   across workers in any mode),
//! * both numeric modes: `Exact` (the pinned serial fold) and `FastV1`
//!   (fixed-lane reductions + moment downdating), each bit-identical to
//!   its own serial run at every worker count.
//!
//! It subsumes the former `parallel_equals_sequential*` tests, and adds
//! the nested-fan-out regression: a lattice walk launched from inside a
//! scheduler task runs inline on the calling worker, so nesting never
//! multiplies thread counts (no cores² explosion).

use std::collections::HashSet;
use std::sync::Mutex;

use causal::Dag;
use causumx::{ConfigBuilder, NumericMode, Session, Summary};
use mining::sched;
use mining::treatment::{LatticeOptions, TreatmentMiner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use table::bitset::BitSet;
use table::{Table, TableBuilder};

/// One generated workload: a table, its DAG, and the query to run.
struct Workload {
    table: Table,
    dag: Dag,
    group_by: &'static str,
    outcome: &'static str,
    where_sql: Option<&'static str>,
}

/// Many grouping patterns with sizes skewed by more than an order of
/// magnitude — the scenario static chunking served poorly.
fn many_skewed_patterns() -> Workload {
    let mut rng = StdRng::seed_from_u64(41);
    let n = 3_000;
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let c = loop {
            let c = rng.gen_range(0..12usize);
            // Skew: low-index countries are much more common.
            if rng.gen_range(0..12) >= c {
                break c;
            }
        };
        let tr = rng.gen_bool(0.4);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c / 3));
        t.push(if tr { "on" } else { "off" }.to_string());
        y.push((c / 3) as f64 * 4.0 + 5.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    Workload {
        table: build_table(country, region, t, y),
        dag: dag(),
        group_by: "country",
        outcome: "y",
        where_sql: None,
    }
}

/// One pattern covers ~90 % of all rows while nine others split the
/// remainder: workers must steal candidate chunks from the giant
/// pattern's levels instead of idling after their own small walk.
fn one_giant_pattern() -> Workload {
    let mut rng = StdRng::seed_from_u64(43);
    let n = 3_000;
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let c = if rng.gen_bool(0.9) {
            0
        } else {
            rng.gen_range(1..10usize)
        };
        let tr = rng.gen_bool(0.5);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c % 3));
        t.push(if tr { "on" } else { "off" }.to_string());
        y.push((c % 3) as f64 * 3.0 + 4.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    Workload {
        table: build_table(country, region, t, y),
        dag: dag(),
        group_by: "country",
        outcome: "y",
        where_sql: None,
    }
}

/// A few large groups plus several singleton/near-empty ones, so some
/// subpopulations fall below `min_arm` and their walks finish at level
/// 0/1 — zero-candidate levels must round-trip the scheduler cleanly.
fn tiny_subpopulations() -> Workload {
    let mut rng = StdRng::seed_from_u64(47);
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for i in 0..2_000usize {
        // c0/c1 hold almost everything; c2..c7 get ~3 rows each.
        let c = if i < 18 { 2 + i / 3 } else { i % 2 };
        let tr = rng.gen_bool(0.5);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c % 2));
        t.push(if tr { "on" } else { "off" }.to_string());
        y.push((c % 2) as f64 * 2.0 + 3.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    Workload {
        table: build_table(country, region, t, y),
        dag: dag(),
        group_by: "country",
        outcome: "y",
        where_sql: None,
    }
}

/// A WHERE clause removes every row of two countries before grouping, so
/// the view has fewer groups than the raw attribute and the miner sees
/// subpopulations defined under the filter.
fn where_emptied_groups() -> Workload {
    let mut rng = StdRng::seed_from_u64(53);
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut wave = Vec::new();
    let mut y = Vec::new();
    for _ in 0..2_500usize {
        let c = rng.gen_range(0..8usize);
        let tr = rng.gen_bool(0.5);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c % 3));
        t.push(if tr { "on" } else { "off" }.to_string());
        // Countries c6/c7 only ever appear in wave 9, which the WHERE
        // clause below excludes entirely.
        wave.push(if c >= 6 { 9 } else { (c % 3) as i64 });
        y.push((c % 3) as f64 * 2.5 + 4.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    let table = TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("region", region)
        .unwrap()
        .cat_owned("t", t)
        .unwrap()
        .int("wave", wave)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap();
    let dag = Dag::new(
        &["country", "region", "t", "wave", "y"],
        &[("country", "y"), ("t", "y")],
    )
    .unwrap();
    Workload {
        table,
        dag,
        group_by: "country",
        outcome: "y",
        where_sql: Some("wave < 9"),
    }
}

fn build_table(country: Vec<String>, region: Vec<String>, t: Vec<String>, y: Vec<f64>) -> Table {
    TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("region", region)
        .unwrap()
        .cat_owned("t", t)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap()
}

fn dag() -> Dag {
    Dag::new(
        &["country", "region", "t", "y"],
        &[("country", "y"), ("t", "y")],
    )
    .unwrap()
}

/// Exact, order-sensitive summary fingerprint: every float by bit
/// pattern, every explanation in its emitted order.
#[allow(clippy::type_complexity)]
fn fingerprint(
    s: &Summary,
) -> (
    u64,
    usize,
    usize,
    usize,
    Vec<(String, Option<u64>, Option<u64>)>,
) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.candidates,
        s.cate_evaluations,
        s.explanations
            .iter()
            .map(|e| {
                (
                    e.grouping.key(),
                    e.positive.as_ref().map(|t| t.cate.to_bits()),
                    e.negative.as_ref().map(|t| t.cate.to_bits()),
                )
            })
            .collect(),
    )
}

fn run(w: &Workload, threads: usize, cache: bool, panel: bool, mode: NumericMode) -> Summary {
    let mut cfg = ConfigBuilder::new()
        .apriori_tau(0.05)
        .threads(threads)
        .use_confounder_panel(panel)
        .numeric_mode(mode)
        .build()
        .unwrap();
    cfg.lattice.use_estimation_cache = cache;
    let session = Session::new(w.table.clone(), w.dag.clone(), cfg);
    let mut q = session.query().group_by(w.group_by).avg(w.outcome);
    if let Some(clause) = w.where_sql {
        q = q.where_sql(clause);
    }
    q.run().unwrap()
}

fn assert_matrix(name: &str, w: &Workload) {
    // (cache, panel): panel-off with cache-on, and cache-off entirely
    // (panel is a no-op without the cache), plus the default both-on.
    // Each knob combination runs under both numeric modes: `Exact` pins
    // the serial ascending fold, `FastV1` the fixed-lane kernels plus
    // moment downdating — each mode must be bit-identical to its *own*
    // serial run at every worker count.
    for mode in [NumericMode::Exact, NumericMode::FastV1] {
        for (cache, panel) in [(true, true), (true, false), (false, false)] {
            let serial = run(w, 1, cache, panel, mode);
            let want = fingerprint(&serial);
            for threads in [2usize, 4, 8] {
                let got = fingerprint(&run(w, threads, cache, panel, mode));
                assert_eq!(
                    want, got,
                    "{name}: threads={threads} cache={cache} panel={panel} \
                     mode={mode:?} diverged from serial"
                );
            }
        }
    }
}

#[test]
fn many_skewed_patterns_bit_identical() {
    assert_matrix("many_skewed_patterns", &many_skewed_patterns());
}

#[test]
fn one_giant_pattern_bit_identical() {
    assert_matrix("one_giant_pattern", &one_giant_pattern());
}

#[test]
fn tiny_subpopulations_bit_identical() {
    assert_matrix("tiny_subpopulations", &tiny_subpopulations());
}

#[test]
fn where_emptied_groups_bit_identical() {
    assert_matrix("where_emptied_groups", &where_emptied_groups());
}

/// Lifeguards must be pure observers: running the same workloads under
/// an (ample) deadline and memory budget through the fallible `try_run`
/// path must stay bit-identical to the unguarded serial run at every
/// worker count — the guard checkpoints may not perturb chunking, merge
/// order or FP accumulation.
#[test]
fn guarded_runs_stay_bit_identical() {
    for w in [many_skewed_patterns(), one_giant_pattern()] {
        let unguarded = fingerprint(&run(&w, 1, true, true, NumericMode::Exact));
        for threads in [1usize, 2, 4] {
            let cfg = ConfigBuilder::new()
                .apriori_tau(0.05)
                .threads(threads)
                .deadline(std::time::Duration::from_secs(3600))
                .memory_budget_mb(1 << 20)
                .build()
                .unwrap();
            let session = Session::new(w.table.clone(), w.dag.clone(), cfg);
            let mut q = session.query().group_by(w.group_by).avg(w.outcome);
            if let Some(clause) = w.where_sql {
                q = q.where_sql(clause);
            }
            let summary = q
                .prepare()
                .unwrap()
                .try_run()
                .expect("ample limits must not trip");
            assert_eq!(
                unguarded,
                fingerprint(&summary),
                "threads={threads}: guard checkpoints perturbed the result"
            );
        }
    }
}

/// Nested fan-out regression: launching a full lattice walk from inside
/// a scheduler task must not spawn a second layer of workers (the old
/// code needed an ad-hoc `level_threads = 1` override to avoid cores²
/// threads). Every thread observed anywhere inside the nested walks must
/// belong to the *outer* pool.
#[test]
fn nested_walks_never_multiply_threads() {
    let w = many_skewed_patterns();
    let miner = TreatmentMiner::new(&w.table, &w.dag, 3, &[0, 1], LatticeOptions::default());
    let n = w.table.nrows();
    let everything = BitSet::from_mask(&vec![true; n]);

    let outer_workers = 4;
    let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let tasks: Vec<usize> = (0..8).collect();
    sched::run_graph(outer_workers, tasks, |_task, _spawn| {
        seen.lock().unwrap().insert(std::thread::current().id());
        // Asking for 8 more workers from inside a task must run inline.
        let paired = miner.top_treatments_paired_with(&everything, 2, true, 8);
        assert!(paired.stats.evaluated > 0);
        seen.lock().unwrap().insert(std::thread::current().id());
    });
    let distinct = seen.lock().unwrap().len();
    assert!(
        distinct <= outer_workers,
        "nested walks leaked onto {distinct} threads (outer pool has {outer_workers})"
    );
}
