//! Integration tests for the session's bounded prepared-statement cache:
//! hit/miss/eviction accounting, key normalization (SQL spelling and
//! builder-built queries share entries), LRU eviction order, bit-identity
//! of cache-hit reports, `set_config` invalidation and the `capacity = 0`
//! kill switch.

use causumx::{ConfigBuilder, Session, Summary};
use table::{Table, TableBuilder};

/// Toy SO-shaped table: country → salary with an education effect and an
/// age column for WHERE clauses.
fn toy() -> (Table, causal::Dag) {
    let n = 240;
    let countries = ["US", "FR", "IN"];
    let mut country = Vec::new();
    let mut edu = Vec::new();
    let mut age = Vec::new();
    let mut salary = Vec::new();
    for i in 0..n {
        let c = countries[i % 3];
        let e = if i % 2 == 0 { "PhD" } else { "BSc" };
        let base = match c {
            "US" => 120.0,
            "FR" => 90.0,
            _ => 40.0,
        };
        country.push(c.to_string());
        edu.push(e.to_string());
        age.push(22 + ((i * 7) % 40) as i64);
        salary.push(base + if e == "PhD" { 30.0 } else { 0.0 } + (i % 5) as f64);
    }
    let table = TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("education", edu)
        .unwrap()
        .int("age", age)
        .unwrap()
        .float("salary", salary)
        .unwrap()
        .build()
        .unwrap();
    let dag = causal::Dag::new(
        &["country", "education", "age", "salary"],
        &[
            ("country", "salary"),
            ("education", "salary"),
            ("age", "salary"),
        ],
    )
    .unwrap();
    (table, dag)
}

fn session_with_capacity(capacity: usize) -> Session {
    let (table, dag) = toy();
    let config = ConfigBuilder::new()
        .k(2)
        .theta(0.6)
        .min_arm(2)
        .threads(1)
        .prepared_statements(capacity)
        .build()
        .unwrap();
    Session::new(table, dag, config)
}

/// Everything deterministic about a summary, with the FP fields captured
/// at full bit precision (Debug on `f64` prints the shortest roundtrip
/// form, which is bijective with the bit pattern for non-NaN values).
fn fingerprint(s: &Summary) -> (u64, usize, usize, usize, String) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.candidates,
        s.cate_evaluations,
        format!("{:?}", s.explanations),
    )
}

const SQL: &str = "SELECT country, AVG(salary) FROM t GROUP BY country";

#[test]
fn hits_are_counted_and_bit_identical_to_fresh_prepares() {
    let session = session_with_capacity(8);

    let fresh = session.prepare(table::sql::parse_query(session.table(), SQL).unwrap());
    let expected = fingerprint(&fresh.unwrap().run());
    // Plain `prepare` never touches the cache.
    assert_eq!(session.prepared_cache_stats().misses, 0);

    let miss = session.sql_cached(SQL).unwrap().run();
    let hit = session.sql_cached(SQL).unwrap().run();
    let stats = session.prepared_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.len), (1, 1, 1));
    assert_eq!(stats.evictions, 0);
    assert_eq!(fingerprint(&miss), expected, "cache miss diverged");
    assert_eq!(fingerprint(&hit), expected, "cache hit diverged");

    // The session-level counters mirror the cache stats.
    let counters = session.counters();
    assert_eq!(counters.prepared_cache_hits, 1);
    assert_eq!(counters.prepared_cache_misses, 1);
    // The hit skipped view materialization: only the un-cached fresh
    // prepare and the one miss built views.
    assert_eq!(counters.views_materialized, 2);
}

#[test]
fn statement_key_normalizes_sql_spelling_and_builder_queries() {
    let session = session_with_capacity(8);
    session.sql_cached(SQL).unwrap();

    // Different whitespace and keyword case, same normalized statement.
    let respelled = "  select   country,  avg(salary)   from somewhere  group by   country  ";
    session.sql_cached(respelled).unwrap();

    // The same query built by name through the builder.
    session
        .query()
        .group_by("country")
        .avg("salary")
        .prepare_cached()
        .unwrap();

    let stats = session.prepared_cache_stats();
    assert_eq!(
        (stats.misses, stats.hits, stats.len),
        (1, 2, 1),
        "all three spellings must share one cache entry"
    );

    // A WHERE clause is part of the key: same projection, new entry.
    let filtered = "SELECT country, AVG(salary) FROM t WHERE age < 40 GROUP BY country";
    session.sql_cached(filtered).unwrap();
    session.sql_cached(filtered).unwrap();
    let stats = session.prepared_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.len), (2, 3, 2));
}

#[test]
fn lru_evicts_the_least_recently_used_statement() {
    let session = session_with_capacity(2);
    let a = "SELECT country, AVG(salary) FROM t GROUP BY country";
    let b = "SELECT education, AVG(salary) FROM t GROUP BY education";
    let c = "SELECT country, AVG(salary) FROM t WHERE age < 50 GROUP BY country";

    session.sql_cached(a).unwrap(); // miss: {a}
    session.sql_cached(b).unwrap(); // miss: {a, b}
    session.sql_cached(a).unwrap(); // hit, a is now most recent
    session.sql_cached(c).unwrap(); // miss: evicts b (LRU), {a, c}

    let stats = session.prepared_cache_stats();
    assert_eq!((stats.misses, stats.hits), (3, 1));
    assert_eq!((stats.len, stats.capacity, stats.evictions), (2, 2, 1));

    // a survived the eviction (it was touched after b)…
    session.sql_cached(a).unwrap();
    assert_eq!(session.prepared_cache_stats().hits, 2);
    // …and b was the victim: asking for it again misses.
    session.sql_cached(b).unwrap();
    let stats = session.prepared_cache_stats();
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.len, 2);
}

#[test]
fn set_config_invalidates_the_cache() {
    let mut session = session_with_capacity(8);
    session.sql_cached(SQL).unwrap();
    assert_eq!(session.prepared_cache_stats().len, 1);

    let config = session.config().clone();
    session.set_config(config);
    assert_eq!(
        session.prepared_cache_stats().len,
        0,
        "reconfiguring must drop cores built under the old config"
    );
    session.sql_cached(SQL).unwrap();
    assert_eq!(session.prepared_cache_stats().misses, 2);
}

#[test]
fn capacity_zero_disables_caching() {
    let session = session_with_capacity(0);
    let first = session.sql_cached(SQL).unwrap().run();
    let second = session.sql_cached(SQL).unwrap().run();
    let stats = session.prepared_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.len), (2, 0, 0));
    assert_eq!(stats.capacity, 0);
    assert_eq!(fingerprint(&first), fingerprint(&second));
}
