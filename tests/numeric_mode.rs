//! Contracts of the versioned numeric modes.
//!
//! `NumericMode::Exact` is the historical bit-replay contract: the serial
//! ascending-order floating-point fold, unchanged by any knob (including
//! `use_downdating`, which Exact ignores). `NumericMode::FastV1` is a
//! *second* pinned contract: fixed-lane (8-lane) strided partial sums
//! folded in one documented order, plus incremental Gram downdating for
//! subset candidates — bit-identical across thread counts and ablation
//! knobs within the mode, and tolerance-close (1e-9 relative) to Exact.
//!
//! This suite pins:
//!
//! * kernel level (proptest): the lane fold is a pure function of the
//!   *visitation sequence* — dense slices, sparse gathers and blocked
//!   accumulation at any block boundary produce identical bits,
//! * estimator level (proptest): Exact and FastV1 agree within 1e-9
//!   relative on CATE and p-value across random tables, confounder
//!   mixes, sampling caps and both backends (IPW keeps exact kernels, so
//!   there the modes agree bit for bit),
//! * pipeline level: FastV1 summaries are bit-identical across worker
//!   counts and the cache/panel ablations; Exact ignores the downdating
//!   knob entirely (bit-identical, `downdates = 0`); downdating vs
//!   re-gathering within FastV1 stays inside the 1e-9 envelope with
//!   identical work counters.

use proptest::prelude::*;

use causal::estimate::{estimate_effect, CateOptions, EstimatorBackend};
use causal::Dag;
use causumx::{ConfigBuilder, NumericMode, Session, Summary};
use stats::numeric::{self, LaneAcc};
use table::{Table, TableBuilder};

// ---------- kernel level: lane-fold determinism ----------

/// Map small integers to "awkward" floats (non-dyadic, mixed sign) so
/// FP non-associativity would surface if the fold order ever varied.
fn awkward(v: i64) -> f64 {
    v as f64 * 0.1 + (v as f64) * (v as f64) * 1e-3 - 3.7
}

proptest! {
    /// The lane fold depends only on the visited values in visitation
    /// order: a dense `lane_sum` over the gathered vector, an element
    /// push through `LaneAcc`, and a filtered-iterator gather all agree
    /// bit for bit, for random row sets at every tail length.
    #[test]
    fn lane_fold_is_gather_invariant(
        vals in prop::collection::vec(-500i64..500, 1..200),
        mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let xs: Vec<f64> = vals.iter().map(|&v| awkward(v)).collect();
        let gathered: Vec<f64> = xs
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(&x, _)| x)
            .collect();

        let dense = numeric::lane_sum(&gathered);
        let mut acc = LaneAcc::new();
        for (x, keep) in xs.iter().zip(mask.iter().cycle()) {
            if *keep {
                acc.push(*x);
            }
        }
        prop_assert_eq!(dense.to_bits(), acc.finish().to_bits(),
            "sparse gather diverged from dense lane pass");
    }

    /// Blocked RSS accumulation is boundary-invariant: folding
    /// `lane_sq_diff_into` over blocks of any multiple-of-8 size matches
    /// the whole-array `lane_sq_diff` bit for bit (the contract the
    /// fused FastV1 residual pass relies on).
    #[test]
    fn blocked_rss_is_boundary_invariant(
        vals in prop::collection::vec((-500i64..500, -500i64..500), 1..300),
        block_units in 1usize..12,
    ) {
        let y: Vec<f64> = vals.iter().map(|&(a, _)| awkward(a)).collect();
        let yhat: Vec<f64> = vals.iter().map(|&(_, b)| awkward(b) * 0.5).collect();
        let whole = numeric::lane_sq_diff(&y, &yhat);

        let block = block_units * 8;
        let mut lanes = [0.0f64; 8];
        let mut s = 0;
        while s < y.len() {
            let e = (s + block).min(y.len());
            numeric::lane_sq_diff_into(&mut lanes, &y[s..e], &yhat[s..e]);
            s = e;
        }
        prop_assert_eq!(whole.to_bits(), numeric::fold8(lanes).to_bits(),
            "block size {} changed the RSS bits", block);
    }
}

// ---------- estimator level: cross-mode tolerance ----------

/// Random-but-structured table: two categorical treatments, a numeric
/// confounder, an outcome with real effects (same shape as the
/// estimation-cache suite uses).
fn build_table(cats_a: &[u8], cats_b: &[u8], nums: &[i64], noise: &[i64]) -> Table {
    let n = cats_a.len();
    let a: Vec<String> = cats_a.iter().map(|&v| format!("a{}", v % 3)).collect();
    let b: Vec<String> = cats_b.iter().map(|&v| format!("b{}", v % 2)).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            3.0 * (cats_a[i].is_multiple_of(3)) as i64 as f64
                - 2.0 * (cats_b[i] % 2 == 1) as i64 as f64
                + (nums[i] % 7) as f64 * 0.3
                + (noise[i] % 11) as f64 * 0.05
        })
        .collect();
    TableBuilder::new()
        .cat_owned("a", a)
        .unwrap()
        .cat_owned("b", b)
        .unwrap()
        .int("num", nums.to_vec())
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap()
}

fn arb_rows() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<i64>, Vec<i64>, Vec<bool>)> {
    (60usize..160).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(-20i64..20, n),
            prop::collection::vec(-100i64..100, n),
            prop::collection::vec(any::<bool>(), n),
        )
    })
}

/// Relative closeness with an absolute floor for near-zero values.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0) || (a.is_nan() && b.is_nan())
}

proptest! {
    /// Exact and FastV1 agree within 1e-9 relative on CATE and p-value
    /// for every confounder mix, sampling cap and backend, and perform
    /// identical work (same n/n_treated/n_control, same Some/None
    /// shape). Under IPW the two modes are bit-identical — FastV1 only
    /// versions the regression kernels.
    #[test]
    fn fast_v1_tracks_exact_across_mixes((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let n = table.nrows();
        let treated: Vec<bool> = ca.iter().map(|&v| v % 3 == 0).collect();

        for backend in [EstimatorBackend::Regression, EstimatorBackend::Ipw] {
            for confounders in [vec![], vec![1], vec![2], vec![1, 2]] {
                for cap in [None, Some(n / 2)] {
                    let opts = |mode| CateOptions {
                        sample_cap: cap,
                        backend,
                        numeric_mode: mode,
                        ..CateOptions::default()
                    };
                    let exact = estimate_effect(&table, Some(&subpop), &treated, 3,
                        &confounders, &opts(NumericMode::Exact));
                    let fast = estimate_effect(&table, Some(&subpop), &treated, 3,
                        &confounders, &opts(NumericMode::FastV1));
                    match (exact, fast) {
                        (Some(e), Some(f)) => {
                            prop_assert!(close(e.cate, f.cate),
                                "{backend:?} cate {} vs {}", e.cate, f.cate);
                            prop_assert!(close(e.p_value, f.p_value),
                                "{backend:?} p {} vs {}", e.p_value, f.p_value);
                            prop_assert_eq!(e.n, f.n);
                            prop_assert_eq!(e.n_treated, f.n_treated);
                            prop_assert_eq!(e.n_control, f.n_control);
                            if backend == EstimatorBackend::Ipw {
                                prop_assert_eq!(e.cate.to_bits(), f.cate.to_bits(),
                                    "IPW must keep exact kernels in both modes");
                            }
                        }
                        (e, f) => prop_assert_eq!(e.is_none(), f.is_none(),
                            "modes disagreed on estimability"),
                    }
                }
            }
        }
    }
}

// ---------- pipeline level ----------

fn so_run(
    n: usize,
    mode: NumericMode,
    threads: usize,
    cache: bool,
    panel: bool,
    downdating: bool,
) -> Summary {
    let ds = datagen::so::generate(n, 42);
    let mut cfg = ConfigBuilder::new()
        .numeric_mode(mode)
        .threads(threads)
        .use_confounder_panel(panel)
        .use_downdating(downdating)
        .build()
        .unwrap();
    cfg.lattice.use_estimation_cache = cache;
    Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(ds.query())
        .unwrap()
        .run()
}

/// Numeric fingerprint: results and work, but *not* the walk counters —
/// `downdates`/`regathers` are only tallied on the cached walk, so they
/// legitimately differ across the cache ablation while every float bit
/// stays identical.
fn fingerprint(s: &Summary) -> (u64, usize, usize, usize) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.candidates,
        s.cate_evaluations,
    )
}

/// FastV1 with downdating disabled is one deterministic function of the
/// input: worker count, estimation cache and confounder panel may not
/// move a bit (the cache-off path delegates to the same lane kernels).
#[test]
fn fast_v1_bit_identical_across_threads_and_knobs() {
    let want = fingerprint(&so_run(3_000, NumericMode::FastV1, 1, true, true, false));
    for threads in [1usize, 2, 4] {
        for (cache, panel) in [(true, true), (true, false), (false, false)] {
            let got = fingerprint(&so_run(
                3_000,
                NumericMode::FastV1,
                threads,
                cache,
                panel,
                false,
            ));
            assert_eq!(
                want, got,
                "FastV1 diverged at threads={threads} cache={cache} panel={panel}"
            );
        }
    }
}

/// With downdating on, FastV1 is still bit-identical across worker
/// counts (plans are built serially per level), and actually exercises
/// the downdate path on the default SO workload.
#[test]
fn fast_v1_downdating_deterministic_and_exercised() {
    let base = so_run(3_000, NumericMode::FastV1, 1, true, true, true);
    assert!(
        base.downdates > 0,
        "SO workload must produce subset candidates that downdate"
    );
    let want = fingerprint(&base);
    for threads in [2usize, 4] {
        let run = so_run(3_000, NumericMode::FastV1, threads, true, true, true);
        assert_eq!(
            want,
            fingerprint(&run),
            "downdating walk diverged at threads={threads}"
        );
        // Plans are built serially per level, so the counters are part
        // of the determinism contract at any worker count.
        assert_eq!(run.downdates, base.downdates, "threads={threads}");
        assert_eq!(run.regathers, base.regathers, "threads={threads}");
    }
}

/// Exact mode never downdates: the knob is inert (bit-identical output,
/// zero downdates either way) and parented candidates show up as
/// re-gathers — the fallback that preserves the bit-replay contract.
#[test]
fn exact_mode_ignores_downdating_knob() {
    let on = so_run(3_000, NumericMode::Exact, 1, true, true, true);
    let off = so_run(3_000, NumericMode::Exact, 1, true, true, false);
    assert_eq!(
        fingerprint(&on),
        fingerprint(&off),
        "the downdating knob must be inert under Exact"
    );
    assert_eq!(on.downdates, 0, "Exact mode must never downdate");
    assert!(
        on.regathers > 0,
        "parented candidates should fall back to re-gathers under Exact"
    );
}

/// Downdating vs re-gathering within FastV1: same work, same selection,
/// and the summary weight stays inside the 1e-9 relative envelope (the
/// subtraction reorders FP, so bit-identity is explicitly *not* the
/// contract here).
#[test]
fn downdate_vs_regather_within_tolerance() {
    let down = so_run(3_000, NumericMode::FastV1, 1, true, true, true);
    let gather = so_run(3_000, NumericMode::FastV1, 1, true, true, false);
    assert_eq!(down.cate_evaluations, gather.cate_evaluations);
    assert_eq!(down.candidates, gather.candidates);
    assert_eq!(down.covered, gather.covered);
    assert_eq!(gather.downdates, 0, "downdating off must not downdate");
    let rel = (down.total_weight - gather.total_weight).abs() / down.total_weight.abs().max(1e-30);
    assert!(
        rel <= 1e-9,
        "downdated weight drifted {rel:.3e} relative from re-gathered"
    );
}

/// Cross-mode pipeline agreement: same candidates, same coverage, and
/// total weight within 1e-9 relative — the whole-pipeline restatement of
/// the kernel tolerance.
#[test]
fn exact_and_fast_v1_pipelines_agree() {
    let exact = so_run(3_000, NumericMode::Exact, 1, true, true, true);
    let fast = so_run(3_000, NumericMode::FastV1, 1, true, true, true);
    assert_eq!(exact.cate_evaluations, fast.cate_evaluations);
    assert_eq!(exact.candidates, fast.candidates);
    assert_eq!(exact.covered, fast.covered);
    let rel = (exact.total_weight - fast.total_weight).abs() / exact.total_weight.abs().max(1e-30);
    assert!(
        rel <= 1e-9,
        "modes drifted {rel:.3e} relative at pipeline level"
    );
}

/// The DAG type is exercised here only through the SO dataset, but keep
/// a direct sanity check that mode selection does not leak into
/// unrelated configuration.
#[test]
fn builder_round_trips_the_mode() {
    let cfg = ConfigBuilder::new()
        .numeric_mode(NumericMode::FastV1)
        .build()
        .unwrap();
    assert_eq!(cfg.lattice.cate_opts.numeric_mode, NumericMode::FastV1);
    assert_eq!(NumericMode::parse("fast_v1"), Some(NumericMode::FastV1));
    assert_eq!(NumericMode::parse("exact"), Some(NumericMode::Exact));
    let _ = Dag::new(&["a", "y"], &[("a", "y")]).unwrap();
}
