//! Integration tests for the session-oriented API: config-builder
//! validation, name/index/SQL query equivalence, prepared-query reuse
//! (zero redundant work, bit-identical results) and the structured JSON
//! report.

use causumx::{ConfigBuilder, Error, Session};
use table::{Table, TableBuilder};

/// Toy SO-shaped table with a country → continent FD and an education
/// effect on salary, plus an age column for WHERE clauses.
fn toy() -> (Table, causal::Dag) {
    let n = 240;
    let countries = ["US", "FR", "IN"];
    let continent = |c: &str| match c {
        "US" => "NA",
        "FR" => "EU",
        _ => "Asia",
    };
    let mut country = Vec::new();
    let mut cont = Vec::new();
    let mut edu = Vec::new();
    let mut age = Vec::new();
    let mut salary = Vec::new();
    for i in 0..n {
        let c = countries[i % 3];
        let e = if i % 2 == 0 { "PhD" } else { "BSc" };
        let a = 22 + ((i * 7) % 40) as i64;
        let base = match c {
            "US" => 120.0,
            "FR" => 90.0,
            _ => 40.0,
        };
        country.push(c.to_string());
        cont.push(continent(c).to_string());
        edu.push(e.to_string());
        age.push(a);
        salary.push(base + if e == "PhD" { 30.0 } else { 0.0 } + (i % 5) as f64);
    }
    let table = TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("continent", cont)
        .unwrap()
        .cat_owned("education", edu)
        .unwrap()
        .int("age", age)
        .unwrap()
        .float("salary", salary)
        .unwrap()
        .build()
        .unwrap();
    let dag = causal::Dag::new(
        &["country", "continent", "education", "age", "salary"],
        &[
            ("country", "salary"),
            ("education", "salary"),
            ("age", "salary"),
        ],
    )
    .unwrap();
    (table, dag)
}

fn toy_session() -> Session {
    let (table, dag) = toy();
    let config = ConfigBuilder::new()
        .k(3)
        .theta(1.0)
        .min_arm(2)
        .threads(1)
        .build()
        .unwrap();
    Session::new(table, dag, config)
}

#[test]
fn config_builder_validation_errors() {
    for (build, want_param) in [
        (ConfigBuilder::new().k(0).build(), "k"),
        (ConfigBuilder::new().theta(1.01).build(), "theta"),
        (ConfigBuilder::new().theta(-0.5).build(), "theta"),
        (
            ConfigBuilder::new().apriori_tau(-1.0).build(),
            "apriori_tau",
        ),
        (ConfigBuilder::new().apriori_tau(7.0).build(), "apriori_tau"),
        (ConfigBuilder::new().max_level(0).build(), "max_level"),
        (ConfigBuilder::new().max_p_value(1.5).build(), "max_p_value"),
    ] {
        match build {
            Err(Error::Config { param, msg }) => {
                assert_eq!(param, want_param);
                assert!(!msg.is_empty());
            }
            other => panic!("expected Config error for {want_param}, got {other:?}"),
        }
    }
    // Valid settings build.
    let cfg = ConfigBuilder::new()
        .k(5)
        .theta(0.75)
        .apriori_tau(0.1)
        .build()
        .unwrap();
    assert_eq!(cfg.k, 5);
}

/// The same query expressed by name, by index, and as SQL must produce
/// identical summaries.
#[test]
fn name_index_sql_equivalence() {
    let session = toy_session();
    let by_name = session
        .query()
        .group_by("country")
        .avg("salary")
        .prepare()
        .unwrap();
    let by_index = session
        .query()
        .group_by_index(0)
        .avg_index(4)
        .prepare()
        .unwrap();
    let by_sql = session
        .sql("SELECT country, AVG(salary) FROM toy GROUP BY country")
        .unwrap();

    let a = by_name.run();
    let b = by_index.run();
    let c = by_sql.run();
    for s in [&a, &b, &c] {
        assert_eq!(s.m, 3);
    }
    assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
    assert_eq!(a.total_weight.to_bits(), c.total_weight.to_bits());
    assert_eq!(a.covered, b.covered);
    assert_eq!(a.covered, c.covered);
    assert_eq!(a.cate_evaluations, b.cate_evaluations);
    assert_eq!(a.cate_evaluations, c.cate_evaluations);
    let keys = |s: &causumx::Summary| {
        let mut v: Vec<String> = s.explanations.iter().map(|e| e.grouping.key()).collect();
        v.sort();
        v
    };
    assert_eq!(keys(&a), keys(&b));
    assert_eq!(keys(&a), keys(&c));
}

/// WHERE clauses agree between the builder fragment and full SQL.
#[test]
fn where_sql_equivalence() {
    let session = toy_session();
    let via_builder = session
        .query()
        .group_by("country")
        .avg("salary")
        .where_sql("age < 40")
        .prepare()
        .unwrap();
    let via_sql = session
        .sql("SELECT country, AVG(salary) FROM toy WHERE age < 40 GROUP BY country")
        .unwrap();
    assert_eq!(
        via_builder.view().counts,
        via_sql.view().counts,
        "identical filtered views"
    );
    let a = via_builder.run();
    let b = via_sql.run();
    assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
}

/// Serving the same prepared query repeatedly does zero redundant
/// per-dataset work and returns bit-identical results — the headline
/// contract of the session redesign.
#[test]
fn prepared_reuse_no_redundant_work() {
    let ds = datagen::so::generate(3_000, 42);
    let config = ConfigBuilder::new().k(3).theta(1.0).build().unwrap();
    let query = ds.query();
    let session = Session::new(ds.table, ds.dag, config);
    let prepared = session.prepare(query).unwrap();

    let after_prepare = session.counters();
    assert_eq!(after_prepare.views_materialized, 1);
    assert_eq!(after_prepare.fd_closures_computed, 1);
    assert_eq!(after_prepare.queries_prepared, 1);
    assert_eq!(after_prepare.backdoor_walks, 0, "no mining yet");

    let first = prepared.run();
    let after_first = session.counters();
    assert!(after_first.backdoor_walks > 0);

    let second = prepared.run();
    let after_second = session.counters();

    // Zero redundant view materializations, FD-closure or backdoor
    // recomputations on the repeated run.
    assert_eq!(after_second.views_materialized, 1);
    assert_eq!(after_second.fd_closures_computed, 1);
    assert_eq!(after_second.backdoor_walks, after_first.backdoor_walks);
    assert_eq!(after_second.runs, 2);

    // Bit-identical results across repeated run()s.
    assert_eq!(first.total_weight.to_bits(), second.total_weight.to_bits());
    assert_eq!(first.covered, second.covered);
    assert_eq!(first.cate_evaluations, second.cate_evaluations);
    assert_eq!(first.explanations.len(), second.explanations.len());
    for (a, b) in first.explanations.iter().zip(&second.explanations) {
        assert_eq!(a.grouping.key(), b.grouping.key());
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        match (&a.positive, &b.positive) {
            (Some(x), Some(y)) => {
                assert_eq!(x.pattern.key(), y.pattern.key());
                assert_eq!(x.cate.to_bits(), y.cate.to_bits());
                assert_eq!(x.p_value.to_bits(), y.p_value.to_bits());
            }
            (None, None) => {}
            _ => panic!("positive treatment mismatch"),
        }
    }

    // Drill-downs also reuse the prepared state: no new views.
    let label = prepared.view().group_label(session.table(), 0);
    assert!(prepared.explain_group(&label, 2).is_some());
    assert_eq!(session.counters().views_materialized, 1);

    // A *second* query on the same session reuses the FD split and the
    // backdoor memo (same group-by set, same outcome).
    let again = session
        .query()
        .group_by("Country")
        .avg("Salary")
        .prepare()
        .unwrap();
    let c = session.counters();
    assert_eq!(c.fd_closures_computed, 1, "FD split cache hit");
    let walks_before = c.backdoor_walks;
    let _ = again.run();
    assert_eq!(
        session.counters().backdoor_walks,
        walks_before,
        "backdoor memo shared across queries"
    );
}

/// Extract the number following `"key":` in a JSON string.
fn json_num(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

/// The structured report's JSON round-trips the key fields of the
/// summary it was built from.
#[test]
fn report_json_round_trips_key_fields() {
    let session = toy_session();
    let prepared = session
        .query()
        .group_by("country")
        .avg("salary")
        .prepare()
        .unwrap();
    let summary = prepared.run();
    let report = prepared.report(&summary);
    assert_eq!(report.m, summary.m);
    assert_eq!(report.covered, summary.covered);
    assert_eq!(report.explanations.len(), summary.explanations.len());

    let json = report.to_json();
    assert_eq!(json_num(&json, "m") as usize, summary.m);
    assert_eq!(json_num(&json, "covered") as usize, summary.covered);
    assert_eq!(
        json_num(&json, "cate_evaluations") as usize,
        summary.cate_evaluations
    );
    assert!((json_num(&json, "total_explainability") - summary.total_weight).abs() < 1e-5);
    assert!(json.contains("\"outcome\":\"salary\""));
    // Per-explanation fields survive: first explanation's weight and the
    // (escaped) grouping string appear verbatim.
    if let Some(e) = report.explanations.first() {
        assert!(json.contains(&format!("\"grouping\":\"{}\"", e.grouping)));
        assert!((json_num(&json, "weight") - e.weight).abs() < 1e-5);
        if let Some(t) = &e.positive {
            assert!(json.contains(&format!("\"pattern\":\"{}\"", t.pattern)));
        }
    }
    // Balanced braces as a cheap well-formedness check.
    let depth: i64 = json
        .chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum();
    assert_eq!(depth, 0);
    // And the text rendering agrees on the headline numbers.
    let text = report.render_text();
    assert!(text.contains(&format!("coverage {}/{}", summary.covered, summary.m)));
}

/// Errors surface with useful structure: SQL position, unknown names,
/// empty views.
#[test]
fn error_surface() {
    let session = toy_session();
    let sql = "SELECT country, AVG(salary) FROM toy GROUP BY wages";
    match session.sql(sql) {
        Err(Error::Sql { pos, msg }) => {
            assert_eq!(pos, sql.find("wages").unwrap());
            assert!(msg.contains("wages"));
        }
        other => panic!("expected Sql error, got {:?}", other.err()),
    }
    assert!(matches!(
        session.query().group_by("nope").avg("salary").prepare(),
        Err(Error::Table(table::TableError::UnknownAttribute(_)))
    ));
    assert!(matches!(
        session
            .query()
            .group_by("country")
            .avg("salary")
            .where_sql("age > 10000")
            .prepare(),
        Err(Error::EmptyView)
    ));
}
