//! Proposition 4.1 — the set-cover reduction (Fig. 17 of the appendix).
//!
//! The feasibility question of Summarized Causal Explanations ("is there a
//! set Φ with |Φ| ≤ k covering ≥ θ·m groups?") embeds Set Cover. These
//! tests build the Fig. 17 instance directly as a `CoverInstance` and
//! verify that the exact selector answers the Set Cover question — both
//! directions of the reduction — which is exactly the equivalence the
//! hardness proof relies on.

use lpsolve::cover::{exhaustive_best, solve_lp_relaxation, CoverInstance};
use table::bitset::BitSet;

/// Build the CauSumX feasibility instance for a set-cover input: universe
/// 0..n, family `sets`, budget `k`, full coverage required.
fn reduction(n: usize, sets: &[Vec<usize>], k: usize) -> CoverInstance {
    CoverInstance {
        // Explainability is irrelevant for feasibility (all zero in the
        // Fig. 17 construction — the outcome column is constant 0).
        weights: vec![0.0; sets.len()],
        covers: sets
            .iter()
            .map(|s| {
                let mut b = BitSet::new(n);
                for &e in s {
                    b.insert(e);
                }
                b
            })
            .collect(),
        m: n,
        k,
        theta: 1.0,
    }
}

#[test]
fn fig17_instance_cover_exists() {
    // Universe {0..4}, S1 = {0,1,2}, S2 = {2,4}, S3 = {3,4}; k = 2 works
    // via {S1, S3} — matching the figure's example.
    let sets = vec![vec![0, 1, 2], vec![2, 4], vec![3, 4]];
    let inst = reduction(5, &sets, 2);
    let sol = exhaustive_best(&inst).expect("cover must exist");
    assert_eq!(sol.chosen, vec![0, 2]);
    assert_eq!(sol.coverage, 5);
}

#[test]
fn fig17_instance_no_cover_below_budget() {
    let sets = vec![vec![0, 1, 2], vec![2, 4], vec![3, 4]];
    let inst = reduction(5, &sets, 1);
    assert!(
        exhaustive_best(&inst).is_none(),
        "no single set covers the universe"
    );
}

#[test]
fn reduction_soundness_random_instances() {
    // For many small random families, the exact selector's answer equals
    // brute-force Set Cover decision.
    let mut rng_state = 0x12345u64;
    let mut next = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) as usize
    };
    for trial in 0..50 {
        let n = 4 + next() % 4; // universe 4..7
        let n_sets = 3 + next() % 4;
        let sets: Vec<Vec<usize>> = (0..n_sets)
            .map(|_| (0..n).filter(|_| next() % 3 == 0).collect())
            .collect();
        let k = 1 + next() % 3;

        // Ground truth by subset enumeration.
        let mut exists = false;
        for mask in 0..(1u32 << n_sets) {
            if mask.count_ones() as usize > k {
                continue;
            }
            let mut covered = vec![false; n];
            for (si, s) in sets.iter().enumerate() {
                if mask >> si & 1 == 1 {
                    for &e in s {
                        covered[e] = true;
                    }
                }
            }
            if covered.iter().all(|&c| c) {
                exists = true;
                break;
            }
        }

        let inst = reduction(n, &sets, k);
        let got = exhaustive_best(&inst).is_some();
        assert_eq!(got, exists, "trial {trial}: sets {sets:?} k {k}");

        // LP relaxation is a sound relaxation: whenever the ILP is
        // feasible the LP must be too (Appendix A claim 1, contrapositive).
        if exists {
            assert!(
                solve_lp_relaxation(&inst).is_some(),
                "LP must be feasible when ILP is (trial {trial})"
            );
        }
    }
}

#[test]
fn lp_infeasibility_certifies_ilp_infeasibility() {
    // When the LP itself is infeasible the algorithm may answer "no
    // solution" outright — this is the only case CauSumX reports failure
    // without rounding.
    let sets = vec![vec![0], vec![1]];
    let inst = reduction(3, &sets, 2); // element 2 uncovered by all sets
    assert!(solve_lp_relaxation(&inst).is_none());
    assert!(exhaustive_best(&inst).is_none());
}
