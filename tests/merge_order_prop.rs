//! Property tests for the scheduler's index-ordered merge primitive.
//!
//! The bit-identity contract of the unified scheduler reduces to one
//! algebraic fact: however task completions interleave, results are
//! merged back in (pattern, level, candidate) index order, so any
//! floating-point fold over the merged sequence accumulates in exactly
//! the serial order. These properties drive `sched::ChunkSlots` (and a
//! full `sched::run_graph` fan-out) with *random completion
//! interleavings* and compare against the recorded serial trace — both
//! the element order and the bit pattern of a left-to-right FP sum.

use std::ops::Range;

use mining::sched::{self, ChunkSlots};
use proptest::prelude::*;

/// Left-to-right sum, compared by bit pattern: FP addition is not
/// associative, so this detects any reordering a `==` on the rounded
/// value might miss.
fn fold_bits(xs: &[f64]) -> u64 {
    xs.iter().fold(0.0f64, |a, &x| a + x).to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completing chunks in an arbitrary order yields the same merged
    /// vector — and the same FP accumulation — as completing them in
    /// index order (the serial trace).
    #[test]
    fn chunk_merge_invariant_under_completion_order(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..200),
        workers in 1usize..9,
        min_chunk in 1usize..9,
        keys in prop::collection::vec(any::<u64>(), 64),
    ) {
        let ranges = sched::chunk_ranges(values.len(), workers, min_chunk);

        // Serial trace: chunks complete in index order.
        let serial_slots = ChunkSlots::new(ranges.len());
        for (i, r) in ranges.iter().enumerate() {
            serial_slots.complete(i, values[r.clone()].to_vec());
        }
        let serial = serial_slots.try_merged().expect("all chunks completed");
        prop_assert_eq!(&serial, &values);

        // Adversarial trace: the same chunks complete in a random
        // interleaving (indices sorted by random keys).
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by_key(|&i| keys[i % keys.len()]);
        let slots = ChunkSlots::new(ranges.len());
        for (pos, &i) in order.iter().enumerate() {
            let done = slots.complete(i, values[ranges[i].clone()].to_vec());
            // `complete` reports readiness exactly once: on the final
            // chunk of the interleaving, whichever index that is.
            prop_assert_eq!(done, pos + 1 == order.len(), "chunk {} at {}", i, pos);
        }
        let merged = slots.try_merged().expect("all chunks completed");
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(fold_bits(&merged), fold_bits(&serial));
    }

    /// Full fan-out through `run_graph`: (pattern × chunk) tasks are
    /// injected in a random order and executed by a real worker pool,
    /// yet every pattern's merged output and the cross-pattern FP fold
    /// match the serial trace bit-for-bit.
    #[test]
    fn run_graph_merge_matches_serial_trace(
        per_pattern in prop::collection::vec(
            prop::collection::vec(-1.0e3f64..1.0e3, 1..60), 1..6),
        workers in 1usize..5,
        keys in prop::collection::vec(any::<u64>(), 32),
    ) {
        // Serial trace: each pattern processed alone, candidates in order.
        let eval = |x: f64| x * 1.5 + 1.0;
        let serial: Vec<Vec<f64>> = per_pattern
            .iter()
            .map(|v| v.iter().map(|&x| eval(x)).collect())
            .collect();
        let serial_fold = fold_bits(
            &serial.iter().flatten().copied().collect::<Vec<_>>());

        let ranges: Vec<Vec<Range<usize>>> = per_pattern
            .iter()
            .map(|v| sched::chunk_ranges(v.len(), workers, 4))
            .collect();
        let slots: Vec<ChunkSlots<f64>> =
            ranges.iter().map(|r| ChunkSlots::new(r.len())).collect();

        // Inject (pattern, chunk) tasks in a random interleaving.
        let mut tasks: Vec<(usize, usize)> = ranges
            .iter()
            .enumerate()
            .flat_map(|(p, rs)| (0..rs.len()).map(move |c| (p, c)))
            .collect();
        tasks.sort_by_key(|&(p, c)| keys[(p * 31 + c) % keys.len()]);

        sched::run_graph(workers, tasks, |(p, c), _spawn| {
            let out: Vec<f64> =
                per_pattern[p][ranges[p][c].clone()].iter().map(|&x| eval(x)).collect();
            slots[p].complete(c, out);
        });

        let merged: Vec<Vec<f64>> = slots.iter().map(|s| s.try_merged().expect("all chunks completed")).collect();
        prop_assert_eq!(&merged, &serial);
        let merged_fold = fold_bits(
            &merged.iter().flatten().copied().collect::<Vec<_>>());
        prop_assert_eq!(merged_fold, serial_fold);
    }
}
