//! Equivalence guarantees of the subpopulation-scoped estimation cache.
//!
//! The perf rework (EstimationContext + bitset-native lattice walk +
//! work-stealing parallelism) must be *behaviour-preserving*: these
//! properties pin (1) context-cached CATE estimation against the naive
//! `estimate_cate` path across random tables and confounder mixes, (2) the
//! cached bitset-native `top_treatment` against the seed's mask-based
//! cold-start behaviour, and (3) work-stealing parallel pipeline output
//! against the sequential run.

use proptest::prelude::*;

use causal::context::EstimationContext;
use causal::estimate::{estimate_cate, CateOptions};
use causal::Dag;
use causumx::{Session, Summary};
use mining::treatment::{Direction, LatticeOptions, TreatmentMiner};
use table::bitset::BitSet;
use table::{Table, TableBuilder};

/// A random-but-structured table: two categorical treatment candidates
/// (`a`, `b`), one numeric attribute (`num`, a confounder of `a`), and an
/// outcome with real effects plus data-driven noise.
fn build_table(cats_a: &[u8], cats_b: &[u8], nums: &[i64], noise: &[i64]) -> Table {
    let n = cats_a.len();
    let a: Vec<String> = cats_a.iter().map(|&v| format!("a{}", v % 3)).collect();
    let b: Vec<String> = cats_b.iter().map(|&v| format!("b{}", v % 2)).collect();
    let num: Vec<i64> = nums.to_vec();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            3.0 * (cats_a[i].is_multiple_of(3)) as i64 as f64
                - 2.0 * (cats_b[i] % 2 == 1) as i64 as f64
                + (nums[i] % 7) as f64 * 0.3
                + (noise[i] % 11) as f64 * 0.05
        })
        .collect();
    TableBuilder::new()
        .cat_owned("a", a)
        .unwrap()
        .cat_owned("b", b)
        .unwrap()
        .int("num", num)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap()
}

/// DAG with a real confounder: `num → a`, and `a, b, num → y`.
fn dag() -> Dag {
    Dag::new(
        &["a", "b", "num", "y"],
        &[("num", "a"), ("a", "y"), ("b", "y"), ("num", "y")],
    )
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<i64>, Vec<i64>, Vec<bool>)> {
    (60usize..160).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(-20i64..20, n),
            prop::collection::vec(-100i64..100, n),
            prop::collection::vec(any::<bool>(), n),
        )
    })
}

proptest! {
    /// (1) Context-cached estimation matches the naive path to 1e-9 on
    /// CATE and p-value, for every confounder mix, with and without the
    /// §5.2(d) sampling cap. (The implementation is bit-identical by
    /// construction; 1e-9 is the contract.)
    #[test]
    fn context_estimation_matches_naive((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let n = table.nrows();
        let treated: Vec<bool> = ca.iter().map(|&v| v % 3 == 0).collect();
        let tbits = BitSet::from_mask(&treated);
        let sub_bits = BitSet::from_mask(&subpop);

        for confounders in [vec![], vec![1], vec![2], vec![1, 2]] {
            for cap in [None, Some(n / 2)] {
                let opts = CateOptions { sample_cap: cap, ..CateOptions::default() };
                let naive = estimate_cate(&table, Some(&subpop), &treated, 3, &confounders, &opts);
                let cached = EstimationContext::new(&table, Some(&sub_bits), 3, &confounders, &opts)
                    .and_then(|ctx| ctx.estimate(&tbits));
                match (naive, cached) {
                    (Some(nv), Some(cv)) => {
                        prop_assert!((nv.cate - cv.cate).abs() < 1e-9,
                            "cate {} vs {}", nv.cate, cv.cate);
                        let p_match = (nv.p_value - cv.p_value).abs() < 1e-9
                            || (nv.p_value.is_nan() && cv.p_value.is_nan());
                        prop_assert!(p_match, "p {} vs {}", nv.p_value, cv.p_value);
                        prop_assert_eq!(nv.n, cv.n);
                        prop_assert_eq!(nv.n_treated, cv.n_treated);
                        prop_assert_eq!(nv.n_control, cv.n_control);
                    }
                    (nv, cv) => prop_assert_eq!(nv.is_none(), cv.is_none()),
                }
            }
        }
    }

    /// (2) The bitset-native, context-cached lattice walk returns exactly
    /// the patterns and statistics of the seed's mask-based cold-start
    /// behaviour (`use_estimation_cache = false` replays it).
    #[test]
    fn cached_miner_matches_naive_miner((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let dag = dag();
        let sub_bits = BitSet::from_mask(&subpop);

        let cached = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions::default());
        let naive = TreatmentMiner::new(&table, &dag, 3, &[0, 1], LatticeOptions {
            use_estimation_cache: false,
            ..LatticeOptions::default()
        });

        for dir in [Direction::Positive, Direction::Negative] {
            let (rc, sc) = cached.top_k_treatments(&sub_bits, dir, 3);
            let (rn, sn) = naive.top_k_treatments(&sub_bits, dir, 3);
            prop_assert_eq!(sc.evaluated, sn.evaluated, "same work counters");
            prop_assert_eq!(sc.levels, sn.levels);
            prop_assert_eq!(rc.len(), rn.len());
            for (c, nv) in rc.iter().zip(&rn) {
                prop_assert_eq!(c.pattern.key(), nv.pattern.key());
                prop_assert_eq!(c.cate, nv.cate, "bit-identical CATE");
                prop_assert_eq!(c.p_value, nv.p_value);
                prop_assert_eq!(c.n_treated, nv.n_treated);
                prop_assert_eq!(c.n_control, nv.n_control);
            }
        }

        // Brute-force enumeration takes the same cached path.
        let ac = cached.all_treatments(&sub_bits, 2);
        let an = naive.all_treatments(&sub_bits, 2);
        prop_assert_eq!(ac.len(), an.len());
        for (c, nv) in ac.iter().zip(&an) {
            prop_assert_eq!(c.pattern.key(), nv.pattern.key());
            prop_assert_eq!(c.cate, nv.cate);
        }
    }
}

fn summary_fingerprint(s: &Summary) -> (usize, usize, String, usize) {
    let mut keys: Vec<String> = s.explanations.iter().map(|e| e.grouping.key()).collect();
    keys.sort();
    (s.covered, s.candidates, keys.join(";"), s.cate_evaluations)
}

/// (3) Work-stealing parallel treatment mining produces the same summary
/// as the sequential run, on a workload with many grouping patterns of
/// very different sizes (the scenario static chunking degraded on).
#[test]
fn work_stealing_parallel_equals_sequential() {
    for seed in [7u64, 21] {
        let ds = datagen::so::generate(3_000, seed);
        let run = |threads: usize| {
            let cfg = causumx::ConfigBuilder::new()
                .threads(threads)
                .build()
                .unwrap();
            Session::new(ds.table.clone(), ds.dag.clone(), cfg)
                .prepare(ds.query())
                .unwrap()
                .run()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.total_weight, par.total_weight, "seed {seed}");
        assert_eq!(summary_fingerprint(&seq), summary_fingerprint(&par));
    }
}
