//! The workload-matrix differential tier.
//!
//! `results/bench_pipeline.json` commits a `matrix` section — five
//! datasets × three query shapes × {Exact, FastV1} from
//! [`bench::workloads`], measured by `perf_smoke --matrix` — and this
//! suite is the other half of that contract: it re-runs every cell in
//! debug builds and hard-asserts
//!
//! * **committed fingerprints** — each fresh cell reproduces the
//!   artifact's `cate_evaluations`, `candidates`, `covered`, `groups`,
//!   `downdates`, `regathers` and `total_weight` (to the artifact's 6
//!   printed decimals) exactly. A counter drift anywhere in the engine
//!   shows up as a named cell, not a vague diff;
//! * **thread bit-identity** — within a cell, `threads = 1` and
//!   `threads = 4` agree bit for bit, weights and walk counters
//!   included (the auto leg of the artifact already asserted `1` vs
//!   `0`; the fixed `4` here exercises real workers even on a
//!   single-core CI host);
//! * **mode agreement** — each FastV1 cell matches its Exact sibling's
//!   work counters with total weight within 1e-9 relative;
//! * **ablation inertness** — per cell, the estimation-cache and
//!   confounder-panel knobs may not move a float bit under Exact, and
//!   `use_downdating` stays inside the 1e-9 envelope under FastV1;
//! * **discovered-DAG quality** — `Session::with_discovered_dag` runs
//!   every `discovery` algorithm end to end on the synthetic matrix
//!   dataset and must reproduce the ground-truth-DAG explanations'
//!   coverage with ≥ 85–95 % of their total weight (floors set from
//!   multi-seed probes, not exact pins — discovery is statistical).
//!
//! The suite runs in the serialized CI leg (`RUST_TEST_THREADS=1`)
//! because the fixed-thread legs measure scheduler determinism, not
//! timing, and must not fight sibling tests for cores.

use bench::workloads::{self, MatrixDataset, QueryShape, MATRIX_DATASETS, MIN_MATRIX_CELLS};
use causumx::{ConfigBuilder, DiscoveryAlgo, NumericMode, Session, Summary};

/// The committed artifact; a missing file is a compile error, which is
/// the point — the matrix section must ship with the repo.
const ARTIFACT: &str = include_str!("../results/bench_pipeline.json");

/// The seed the committed artifact was generated with (checked against
/// its `seed` field before any fingerprint is compared).
const SEED: u64 = 42;

// ---------- artifact parsing (line scan of our own format) ----------

/// One committed matrix cell, scanned back from its artifact line.
struct CommittedCell {
    dataset: String,
    shape: String,
    mode: String,
    n: usize,
    groups: usize,
    cate_evaluations: usize,
    candidates: usize,
    covered: usize,
    total_weight: f64,
    downdates: usize,
    regathers: usize,
    bit_identical: bool,
}

impl CommittedCell {
    fn id(&self) -> String {
        format!("{}/{}/{}", self.dataset, self.shape, self.mode)
    }
}

/// Parse the number following `key` on `line`, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the quoted string following `key` on `line`, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Every matrix cell committed in the artifact, in artifact order. The
/// format is one cell per line (perf_smoke guarantees it), so a line
/// scan suffices — no JSON parser in the offline container.
fn committed_cells() -> Vec<CommittedCell> {
    let mut out = Vec::new();
    for line in ARTIFACT.lines() {
        let Some(shape) = field_str(line, "\"shape\":") else {
            continue;
        };
        let cell = CommittedCell {
            dataset: field_str(line, "\"dataset\":").expect("matrix line has dataset"),
            shape,
            mode: field_str(line, "\"mode\":").expect("matrix line has mode"),
            n: field_num(line, "\"n\":").expect("matrix line has n") as usize,
            groups: field_num(line, "\"groups\":").expect("groups") as usize,
            cate_evaluations: field_num(line, "\"cate_evaluations\":").expect("evals") as usize,
            candidates: field_num(line, "\"candidates\":").expect("candidates") as usize,
            covered: field_num(line, "\"covered\":").expect("covered") as usize,
            total_weight: field_num(line, "\"total_weight\":").expect("weight"),
            downdates: field_num(line, "\"downdates\":").expect("downdates") as usize,
            regathers: field_num(line, "\"regathers\":").expect("regathers") as usize,
            bit_identical: line.contains("\"bit_identical\": true"),
        };
        out.push(cell);
    }
    out
}

/// The artifact's top-level `seed` field.
fn artifact_seed() -> u64 {
    ARTIFACT
        .lines()
        .find_map(|l| {
            l.trim_start()
                .starts_with("\"seed\":")
                .then(|| field_num(l, "\"seed\":"))
                .flatten()
        })
        .expect("artifact has a seed field") as u64
}

// ---------- cell execution ----------

/// Run one matrix cell at a worker count, defaults otherwise.
fn run_cell(
    ds: &datagen::Dataset,
    spec: &MatrixDataset,
    shape: QueryShape,
    mode: NumericMode,
    threads: usize,
) -> Summary {
    let cfg = ConfigBuilder::new()
        .numeric_mode(mode)
        .threads(threads)
        .build()
        .unwrap();
    Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(workloads::shaped_query(ds, spec, shape))
        .unwrap()
        .run()
}

/// Full fingerprint: weight bits plus every deterministic counter.
fn full_print(s: &Summary) -> (u64, usize, usize, usize, usize, usize, usize) {
    (
        s.total_weight.to_bits(),
        s.cate_evaluations,
        s.candidates,
        s.covered,
        s.m,
        s.downdates,
        s.regathers,
    )
}

/// Numeric fingerprint without the walk counters: `downdates` /
/// `regathers` are only tallied on the cached walk, so they legitimately
/// differ across the estimation-cache ablation while every float bit
/// stays identical.
fn numeric_print(s: &Summary) -> (u64, usize, usize, usize) {
    (
        s.total_weight.to_bits(),
        s.cate_evaluations,
        s.candidates,
        s.covered,
    )
}

// ---------- the committed artifact's structure ----------

/// The artifact must carry the complete matrix: at least the committed
/// floor of cells, exactly the cells [`bench::workloads`] enumerates, in
/// enumeration order, each self-consistent and generated at the pinned
/// seed.
#[test]
fn committed_artifact_pins_the_full_matrix() {
    assert_eq!(
        artifact_seed(),
        SEED,
        "artifact was generated at a non-default seed; regenerate with \
         `perf_smoke --matrix` before running the differential tier"
    );
    let cells = committed_cells();
    assert!(
        cells.len() >= MIN_MATRIX_CELLS,
        "artifact has {} matrix cells, below the committed floor {}",
        cells.len(),
        MIN_MATRIX_CELLS
    );
    let want: Vec<String> = workloads::matrix_cells().iter().map(|c| c.id()).collect();
    let got: Vec<String> = cells.iter().map(|c| c.id()).collect();
    assert_eq!(got, want, "artifact cells must mirror bench::workloads");
    for c in &cells {
        assert!(
            c.bit_identical,
            "{}: thread legs were not bit-identical",
            c.id()
        );
        assert!(c.n > 0 && c.groups > 0, "{}", c.id());
        assert!(c.cate_evaluations > 0, "{}: no work recorded", c.id());
        assert!(c.candidates > 0, "{}", c.id());
        assert!(
            c.covered > 0 && c.covered <= c.groups,
            "{}: covered {} of {} groups",
            c.id(),
            c.covered,
            c.groups
        );
        assert!(c.total_weight > 0.0, "{}", c.id());
        if c.mode == "exact" {
            assert_eq!(c.downdates, 0, "{}: Exact must never downdate", c.id());
        }
    }
}

// ---------- the differential replay ----------

/// Every cell, fresh: reproduce the committed fingerprint, bit-identical
/// across `threads = 1` vs `4`, and FastV1 within 1e-9 of its Exact
/// sibling with identical work counters.
#[test]
fn cells_replay_committed_fingerprints() {
    let committed = committed_cells();
    for spec in MATRIX_DATASETS {
        let ds = workloads::generate(&spec, SEED);
        for shape in QueryShape::ALL {
            let mut exact: Option<Summary> = None;
            for mode in [NumericMode::Exact, NumericMode::FastV1] {
                let id = format!("{}/{}/{}", spec.name, shape.as_str(), mode.as_str());
                let t1 = run_cell(&ds, &spec, shape, mode, 1);
                let t4 = run_cell(&ds, &spec, shape, mode, 4);
                assert_eq!(
                    full_print(&t1),
                    full_print(&t4),
                    "{id}: threads 1 vs 4 diverged"
                );

                let pin = committed
                    .iter()
                    .find(|c| c.id() == id)
                    .unwrap_or_else(|| panic!("{id} missing from the committed artifact"));
                assert_eq!(pin.n, spec.n, "{id}");
                assert_eq!(t1.m, pin.groups, "{id}: group count drifted");
                assert_eq!(
                    t1.cate_evaluations, pin.cate_evaluations,
                    "{id}: cate_evaluations drifted from the committed artifact"
                );
                assert_eq!(t1.candidates, pin.candidates, "{id}: candidates drifted");
                assert_eq!(t1.covered, pin.covered, "{id}: coverage drifted");
                assert_eq!(t1.downdates, pin.downdates, "{id}: downdates drifted");
                assert_eq!(t1.regathers, pin.regathers, "{id}: regathers drifted");
                // The artifact prints 6 decimals; anything beyond
                // rounding error is a real numeric change.
                assert!(
                    (t1.total_weight - pin.total_weight).abs() < 1e-5,
                    "{id}: total_weight {} drifted from committed {}",
                    t1.total_weight,
                    pin.total_weight
                );

                match mode {
                    NumericMode::Exact => exact = Some(t1),
                    NumericMode::FastV1 => {
                        let e = exact.as_ref().expect("Exact ran first");
                        assert_eq!(e.cate_evaluations, t1.cate_evaluations, "{id}");
                        assert_eq!(e.candidates, t1.candidates, "{id}");
                        assert_eq!(e.covered, t1.covered, "{id}");
                        let rel = (e.total_weight - t1.total_weight).abs()
                            / e.total_weight.abs().max(1e-30);
                        assert!(
                            rel <= 1e-9,
                            "{id}: FastV1 drifted {rel:.3e} relative from Exact"
                        );
                    }
                }
            }
        }
    }
}

/// Per cell, the cache-layer knobs are pure reorganizations: under Exact
/// the estimation cache and the confounder panel may not move a bit;
/// under FastV1 disabling downdating re-gathers every subset candidate,
/// staying inside the 1e-9 envelope with identical work.
#[test]
fn ablation_knobs_are_inert_per_cell() {
    for spec in MATRIX_DATASETS {
        let ds = workloads::generate(&spec, SEED);
        for shape in QueryShape::ALL {
            let id =
                |mode: NumericMode| format!("{}/{}/{}", spec.name, shape.as_str(), mode.as_str());
            // Exact: cache off + panel off, same bits.
            let base = run_cell(&ds, &spec, shape, NumericMode::Exact, 1);
            let mut cfg = ConfigBuilder::new()
                .numeric_mode(NumericMode::Exact)
                .threads(1)
                .use_confounder_panel(false)
                .build()
                .unwrap();
            cfg.lattice.use_estimation_cache = false;
            let ablated = Session::new(ds.table.clone(), ds.dag.clone(), cfg)
                .prepare(workloads::shaped_query(&ds, &spec, shape))
                .unwrap()
                .run();
            assert_eq!(
                numeric_print(&base),
                numeric_print(&ablated),
                "{}: cache/panel ablation changed the summary",
                id(NumericMode::Exact)
            );

            // FastV1: downdating off, tolerance-close with equal work.
            let fast = run_cell(&ds, &spec, shape, NumericMode::FastV1, 1);
            let cfg = ConfigBuilder::new()
                .numeric_mode(NumericMode::FastV1)
                .threads(1)
                .use_downdating(false)
                .build()
                .unwrap();
            let gathered = Session::new(ds.table.clone(), ds.dag.clone(), cfg)
                .prepare(workloads::shaped_query(&ds, &spec, shape))
                .unwrap()
                .run();
            assert_eq!(gathered.downdates, 0, "{}", id(NumericMode::FastV1));
            assert_eq!(fast.cate_evaluations, gathered.cate_evaluations);
            assert_eq!(fast.candidates, gathered.candidates);
            assert_eq!(fast.covered, gathered.covered);
            let rel = (fast.total_weight - gathered.total_weight).abs()
                / fast.total_weight.abs().max(1e-30);
            assert!(
                rel <= 1e-9,
                "{}: downdating knob drifted {rel:.3e} relative",
                id(NumericMode::FastV1)
            );
        }
    }
}

// ---------- discovered-DAG pipeline ----------

/// The synthetic matrix dataset (known SCM), its representative query,
/// and the ground-truth-DAG summary to compare against.
fn synthetic_truth() -> (datagen::Dataset, MatrixDataset, Summary) {
    let spec = MATRIX_DATASETS
        .into_iter()
        .find(|d| d.name == "synthetic")
        .expect("matrix has a synthetic row");
    let ds = workloads::generate(&spec, SEED);
    let truth = run_cell(&ds, &spec, QueryShape::Single, NumericMode::Exact, 1);
    (ds, spec, truth)
}

/// `Session::with_discovered_dag` end to end: every discovery algorithm
/// learns a DAG from the synthetic table and drives explanation mining
/// to (near) ground-truth quality. Floors come from probing seeds
/// {7, 42, 99}: PC/FCI/hill-climb reproduced the ground-truth summary
/// exactly (weight ratio 1.000), LiNGAM's worst ratio was 0.917 — so
/// 0.95 / 0.85 leave margin without letting quality quietly halve.
#[test]
fn discovered_dag_explanations_reach_ground_truth_quality() {
    let (ds, _, truth) = synthetic_truth();
    assert_eq!(truth.covered, truth.m, "ground truth covers every group");
    let cfg = ConfigBuilder::new().build().unwrap();
    for (algo, floor) in [
        (DiscoveryAlgo::pc(), 0.95),
        (DiscoveryAlgo::fci(), 0.95),
        (DiscoveryAlgo::hill_climb(), 0.95),
        (DiscoveryAlgo::Lingam, 0.85),
    ] {
        let session = Session::with_discovered_dag(ds.table.clone(), algo, cfg.clone());
        let summary = session.prepare(ds.query()).unwrap().run();
        assert_eq!(
            summary.covered,
            truth.covered,
            "{}: discovered DAG lost coverage",
            algo.as_str()
        );
        assert_eq!(summary.m, truth.m, "{}", algo.as_str());
        let ratio = summary.total_weight / truth.total_weight;
        assert!(
            ratio >= floor,
            "{}: weight ratio {ratio:.3} below floor {floor}",
            algo.as_str()
        );
        assert!(summary.cate_evaluations > 0, "{}", algo.as_str());
    }
}

/// The discovery row cap is a deterministic prefix: discovering on a
/// table larger than [`Session::DISCOVERY_ROW_CAP`] equals discovering
/// on its first-cap rows directly — sessions over big tables get
/// bounded, reproducible discovery rather than a silent full-table scan.
#[test]
fn discovery_row_cap_is_a_deterministic_prefix() {
    let ds = datagen::adult::generate(Session::DISCOVERY_ROW_CAP + 500, 61);
    let algo = DiscoveryAlgo::pc();
    let capped = algo.discover(&ds.table);
    let prefix = workloads::row_prefix(&ds.table, Session::DISCOVERY_ROW_CAP);
    let direct = discovery::pc(
        &discovery::numeric_columns(&prefix),
        &discovery::attr_names(&prefix),
        0.01,
    );
    assert_eq!(capped.names(), direct.names());
    assert_eq!(
        capped.edges(),
        direct.edges(),
        "row cap must be the first-{} prefix",
        Session::DISCOVERY_ROW_CAP
    );
    // And the capped DAG feeds a session end to end.
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::with_discovered_dag(ds.table.clone(), algo, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(summary.covered > 0);
}
