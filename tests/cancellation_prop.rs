//! Property test: cancellation is all-or-nothing.
//!
//! A `Cancel` fault injected at a *random* (pattern, level, chunk) site,
//! at any worker count, must produce exactly one of two outcomes:
//!
//! * the walk finished before the site was reached (or the site does not
//!   exist) — a complete summary, **bit-identical** to the clean
//!   baseline at the same thread count, or
//! * a clean `Error::Cancelled` with sane progress counters.
//!
//! Never a partial or corrupt summary, never a poisoned session: after
//! every shrink-iteration the same session re-runs the query unfaulted
//! and must reproduce the baseline bit-for-bit.

use causal::Dag;
use causumx::{ConfigBuilder, Error, FaultKind, FaultPlan, FaultSite, Session, Summary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use table::{Table, TableBuilder};

fn dataset() -> (Table, Dag) {
    let mut rng = StdRng::seed_from_u64(61);
    let n = 1_200;
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let c = rng.gen_range(0..6usize);
        let tr = rng.gen_bool(0.5);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c % 2));
        t.push(if tr { "on" } else { "off" }.to_string());
        y.push((c % 2) as f64 * 3.0 + 4.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    let table = TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("region", region)
        .unwrap()
        .cat_owned("t", t)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap();
    let dag = Dag::new(
        &["country", "region", "t", "y"],
        &[("country", "y"), ("t", "y")],
    )
    .unwrap();
    (table, dag)
}

fn fingerprint(s: &Summary) -> (u64, usize, usize, Vec<(String, Option<u64>, Option<u64>)>) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.cate_evaluations,
        s.explanations
            .iter()
            .map(|e| {
                (
                    e.grouping.key(),
                    e.positive.as_ref().map(|t| t.cate.to_bits()),
                    e.negative.as_ref().map(|t| t.cate.to_bits()),
                )
            })
            .collect(),
    )
}

fn config(threads: usize) -> ConfigBuilder {
    ConfigBuilder::new().apriori_tau(0.05).threads(threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_cancel_site_is_all_or_nothing(
        pattern in 0usize..12,
        level in 1usize..4,
        chunk in 0usize..4,
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let (table, dag) = dataset();

        let baseline_session =
            Session::new(table.clone(), dag.clone(), config(threads).build().unwrap());
        let want = fingerprint(
            &baseline_session.query().group_by("country").avg("y").run().unwrap(),
        );

        let site = FaultSite { pattern, level, chunk };
        let cfg = config(threads)
            .fault_plan(FaultPlan::new().inject(site, FaultKind::Cancel))
            .build()
            .unwrap();
        let session = Session::new(table.clone(), dag.clone(), cfg);
        let q = session.query().group_by("country").avg("y").prepare().unwrap();
        match q.try_run() {
            Ok(summary) => prop_assert_eq!(
                &want,
                &fingerprint(&summary),
                "site {:?} unreached but summary diverged", site
            ),
            Err(Error::Cancelled { progress }) => {
                // Progress is a consistent snapshot: a cancelled run can
                // never report more work than the complete run performs.
                let (_, _, total_evals, _) = want.clone();
                prop_assert!(
                    progress.cate_evaluations <= total_evals,
                    "progress overcounts: {} > {}", progress.cate_evaluations, total_evals
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }

        // Determinism: the faulted query's outcome is a function of the
        // site, not of scheduling luck — rerunning must agree on
        // success-vs-cancelled.
        let again_cancelled = matches!(q.try_run(), Err(Error::Cancelled { .. }));
        let first_cancelled = matches!(q.try_run(), Err(Error::Cancelled { .. }));
        prop_assert_eq!(again_cancelled, first_cancelled);

        // The session survives whatever happened: a clean run on the
        // *baseline* session reproduces the baseline bit-for-bit.
        let clean = baseline_session.query().group_by("country").avg("y").run().unwrap();
        prop_assert_eq!(&want, &fingerprint(&clean));
    }
}
