//! Chaos suite: deterministic fault injection against the query
//! lifeguards.
//!
//! Each test arms a [`FaultPlan`] (or a guard limit) on one query and
//! asserts the failure-model contract end to end:
//!
//! * an injected fault surfaces as **exactly one** structured
//!   [`causumx::Error`] naming its site,
//! * uninjected sibling queries — including ones running concurrently on
//!   their own scheduler pools — stay **bit-identical** to a clean
//!   baseline,
//! * the session, its caches and the worker pool stay reusable after
//!   every failure (no leaked workers: the scheduler's scoped threads
//!   would deadlock the next run if a worker survived),
//! * benign faults (delays, spurious wakeups, unreached sites) change
//!   nothing observable.
//!
//! The fault-observing scenarios run under both numeric modes
//! (`Exact` and `FastV1`) — the failure model is independent of which
//! reduction kernels the estimator uses.
//!
//! The dataset is seeded; set `CHAOS_SEED` to sweep the matrix in CI.

use std::time::Duration;

use causal::Dag;
use causumx::{
    ConfigBuilder, Error, FaultKind, FaultPlan, FaultSite, NumericMode, RunGuard, Session, Summary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use table::{Table, TableBuilder};

/// Seed for dataset generation; override with `CHAOS_SEED` to sweep.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(41)
}

/// The fault site every plan below targets: the first evaluation chunk
/// of the first lattice level of the first pattern walk — reached by
/// every run that mines at least one grouping pattern, at any thread
/// count.
const SITE: FaultSite = FaultSite {
    pattern: 0,
    level: 1,
    chunk: 0,
};

fn dataset() -> (Table, Dag) {
    let mut rng = StdRng::seed_from_u64(chaos_seed());
    let n = 1_500;
    let mut country = Vec::new();
    let mut region = Vec::new();
    let mut t = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let c = rng.gen_range(0..8usize);
        let tr = rng.gen_bool(0.5);
        country.push(format!("c{c}"));
        region.push(format!("r{}", c % 3));
        t.push(if tr { "on" } else { "off" }.to_string());
        y.push((c % 3) as f64 * 3.0 + 4.0 * tr as i64 as f64 + rng.gen_range(-0.5..0.5));
    }
    let table = TableBuilder::new()
        .cat_owned("country", country)
        .unwrap()
        .cat_owned("region", region)
        .unwrap()
        .cat_owned("t", t)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap();
    let dag = Dag::new(
        &["country", "region", "t", "y"],
        &[("country", "y"), ("t", "y")],
    )
    .unwrap();
    (table, dag)
}

fn config(threads: usize, mode: NumericMode) -> ConfigBuilder {
    ConfigBuilder::new()
        .apriori_tau(0.05)
        .threads(threads)
        .numeric_mode(mode)
}

/// Both numeric modes: the failure model must hold identically under the
/// pinned serial fold and the fixed-lane FastV1 kernels.
const MODES: [NumericMode; 2] = [NumericMode::Exact, NumericMode::FastV1];

/// Exact, order-sensitive summary fingerprint (bit patterns, not
/// rounded values).
fn fingerprint(s: &Summary) -> (u64, usize, usize, Vec<(String, Option<u64>, Option<u64>)>) {
    (
        s.total_weight.to_bits(),
        s.covered,
        s.cate_evaluations,
        s.explanations
            .iter()
            .map(|e| {
                (
                    e.grouping.key(),
                    e.positive.as_ref().map(|t| t.cate.to_bits()),
                    e.negative.as_ref().map(|t| t.cate.to_bits()),
                )
            })
            .collect(),
    )
}

/// Clean-run fingerprint under `threads`, used as the baseline every
/// faulted scenario is compared against.
fn baseline(table: &Table, dag: &Dag, threads: usize, mode: NumericMode) -> Summary {
    let session = Session::new(
        table.clone(),
        dag.clone(),
        config(threads, mode).build().unwrap(),
    );
    session.query().group_by("country").avg("y").run().unwrap()
}

#[test]
fn injected_panic_fails_only_that_query_and_names_its_site() {
    let (table, dag) = dataset();
    for (threads, mode) in [1usize, 2, 4]
        .into_iter()
        .flat_map(|t| MODES.map(|m| (t, m)))
    {
        let want = fingerprint(&baseline(&table, &dag, threads, mode));

        let cfg = config(threads, mode)
            .fault_plan(FaultPlan::new().inject(SITE, FaultKind::Panic))
            .build()
            .unwrap();
        let mut session = Session::new(table.clone(), dag.clone(), cfg);
        {
            let q = session
                .query()
                .group_by("country")
                .avg("y")
                .prepare()
                .unwrap();
            match q.try_run() {
                Err(Error::Worker { task, payload }) => {
                    assert!(task.contains("pattern 0"), "threads={threads}: task={task}");
                    assert!(
                        payload.contains("pattern 0 level 1 chunk 0"),
                        "threads={threads}: payload={payload}"
                    );
                }
                other => panic!("threads={threads}: expected worker error, got {other:?}"),
            }
            // Fault fires once per guarded call; re-arming per run means
            // the next run of the *same* query fails identically — still
            // exactly one structured error, still no poisoned pool.
            assert!(matches!(q.try_run(), Err(Error::Worker { .. })));
        }

        // The session (and its FD/backdoor caches) survives: disarm the
        // plan and the same query is bit-identical to the clean baseline.
        session.set_config(config(threads, mode).build().unwrap());
        let clean = session.query().group_by("country").avg("y").run().unwrap();
        assert_eq!(
            want,
            fingerprint(&clean),
            "threads={threads} mode={mode:?}: post-failure run diverged from baseline"
        );
    }
}

#[test]
fn concurrent_sibling_query_stays_bit_identical() {
    let (table, dag) = dataset();
    let threads = 2;
    let want = fingerprint(&baseline(&table, &dag, threads, NumericMode::Exact));

    let faulted_cfg = config(threads, NumericMode::Exact)
        .fault_plan(FaultPlan::new().inject(SITE, FaultKind::Panic))
        .build()
        .unwrap();
    let faulted = Session::new(table.clone(), dag.clone(), faulted_cfg);
    let clean = Session::new(
        table.clone(),
        dag.clone(),
        config(threads, NumericMode::Exact).build().unwrap(),
    );

    std::thread::scope(|scope| {
        let chaos = scope.spawn(|| {
            let q = faulted
                .query()
                .group_by("country")
                .avg("y")
                .prepare()
                .unwrap();
            q.try_run()
        });
        let sibling = scope.spawn(|| {
            let q = clean
                .query()
                .group_by("country")
                .avg("y")
                .prepare()
                .unwrap();
            q.run()
        });
        assert!(matches!(chaos.join().unwrap(), Err(Error::Worker { .. })));
        assert_eq!(
            want,
            fingerprint(&sibling.join().unwrap()),
            "sibling query diverged while a chaos query panicked next door"
        );
    });
}

#[test]
fn benign_faults_leave_results_bit_identical() {
    let (table, dag) = dataset();
    for (threads, mode) in [1usize, 2, 4]
        .into_iter()
        .flat_map(|t| MODES.map(|m| (t, m)))
    {
        let want = fingerprint(&baseline(&table, &dag, threads, mode));
        // Delay + spurious wakeup at a reached site, plus a panic armed
        // at a site no walk ever visits: all must be invisible in the
        // output.
        let plan = FaultPlan::new()
            .inject(SITE, FaultKind::Delay(Duration::from_millis(5)))
            .inject(SITE, FaultKind::SpuriousWake)
            .inject(
                FaultSite {
                    pattern: 999,
                    level: 1,
                    chunk: 0,
                },
                FaultKind::Panic,
            );
        let cfg = config(threads, mode).fault_plan(plan).build().unwrap();
        let session = Session::new(table.clone(), dag.clone(), cfg);
        let q = session
            .query()
            .group_by("country")
            .avg("y")
            .prepare()
            .unwrap();
        let got = q.try_run().expect("benign faults must not fail the query");
        assert_eq!(
            want,
            fingerprint(&got),
            "threads={threads} mode={mode:?}: delay/spurious-wake changed the summary"
        );
    }
}

#[test]
fn cancel_fault_surfaces_clean_cancelled_error() {
    let (table, dag) = dataset();
    for (threads, mode) in [1usize, 2, 4]
        .into_iter()
        .flat_map(|t| MODES.map(|m| (t, m)))
    {
        let cfg = config(threads, mode)
            .fault_plan(FaultPlan::new().inject(SITE, FaultKind::Cancel))
            .build()
            .unwrap();
        let session = Session::new(table.clone(), dag.clone(), cfg);
        let q = session
            .query()
            .group_by("country")
            .avg("y")
            .prepare()
            .unwrap();
        match q.try_run() {
            Err(Error::Cancelled { .. }) => {}
            other => panic!("threads={threads}: expected cancellation, got {other:?}"),
        }
    }
}

#[test]
fn immediate_deadline_trips_with_progress() {
    let (table, dag) = dataset();
    let cfg = config(2, NumericMode::Exact)
        .deadline(Duration::from_nanos(1))
        .build()
        .unwrap();
    let session = Session::new(table, dag, cfg);
    let q = session
        .query()
        .group_by("country")
        .avg("y")
        .prepare()
        .unwrap();
    match q.try_run() {
        Err(Error::DeadlineExceeded { after_ms, .. }) => assert_eq!(after_ms, 0),
        other => panic!("expected deadline trip, got {other:?}"),
    }
}

#[test]
fn memory_budget_trips_via_synthetic_probe() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let (table, dag) = dataset();
    let session = Session::new(table, dag, config(2, NumericMode::Exact).build().unwrap());
    let q = session
        .query()
        .group_by("country")
        .avg("y")
        .prepare()
        .unwrap();

    // Baseline reading 0, then 4 MiB of apparent growth per probe call:
    // the 1 MiB budget trips at the first checked chunk boundary.
    let calls = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&calls);
    let guard = RunGuard::new()
        .with_memory_probe(move || Some(c.fetch_add(1, Ordering::Relaxed) * (4 << 20)))
        .with_memory_budget_bytes(1 << 20);
    match q.run_guarded(&guard) {
        Err(Error::MemoryBudget {
            budget_mb,
            observed_mb,
            ..
        }) => {
            assert_eq!(budget_mb, 1);
            assert!(observed_mb > budget_mb);
        }
        other => panic!("expected memory-budget trip, got {other:?}"),
    }

    // Only that run died: the same prepared query under a real (huge)
    // budget completes.
    let ok = q
        .run_guarded(&RunGuard::new().with_memory_budget_mb(1 << 20))
        .expect("huge budget must not trip");
    assert!(ok.m > 0);
}

#[test]
fn cancel_handle_works_from_another_thread() {
    let (table, dag) = dataset();
    let session = Session::new(table, dag, config(2, NumericMode::Exact).build().unwrap());
    let q = session
        .query()
        .group_by("country")
        .avg("y")
        .prepare()
        .unwrap();

    // Deterministic: cancelled before the run starts — the first
    // checkpoint sees it.
    let guard = RunGuard::new();
    let handle = guard.cancel_handle();
    std::thread::spawn(move || handle.cancel()).join().unwrap();
    assert!(matches!(
        q.run_guarded(&guard),
        Err(Error::Cancelled { .. })
    ));

    // Racy flavor: cancel mid-flight. Either the run finished first
    // (complete summary) or it was cancelled cleanly — never anything
    // else.
    let guard = RunGuard::new();
    let handle = guard.cancel_handle();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_micros(200));
            handle.cancel();
        });
        match q.run_guarded(&guard) {
            Ok(summary) => assert!(summary.m > 0),
            Err(Error::Cancelled { .. }) => {}
            other => panic!("expected completion or cancellation, got {other:?}"),
        }
    });
}

#[test]
fn pool_survives_repeated_faulted_runs() {
    let (table, dag) = dataset();
    let threads = 4;
    let want = fingerprint(&baseline(&table, &dag, threads, NumericMode::Exact));

    let cfg = config(threads, NumericMode::Exact)
        .fault_plan(FaultPlan::new().inject(SITE, FaultKind::Panic))
        .build()
        .unwrap();
    let faulted = Session::new(table.clone(), dag.clone(), cfg);
    let q = faulted
        .query()
        .group_by("country")
        .avg("y")
        .prepare()
        .unwrap();
    for round in 0..5 {
        assert!(
            matches!(q.try_run(), Err(Error::Worker { .. })),
            "round {round}: fault stopped firing"
        );
    }

    let clean = Session::new(
        table,
        dag,
        config(threads, NumericMode::Exact).build().unwrap(),
    );
    let got = clean.query().group_by("country").avg("y").run().unwrap();
    assert_eq!(want, fingerprint(&got), "pool unusable after chaos rounds");
}
