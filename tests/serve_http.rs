//! End-to-end tests of `causumx-serve`'s HTTP surface over real TCP:
//! spawn the accept loop on an ephemeral port, speak raw HTTP/1.1 and
//! assert the full contract — 200 report JSON matching a direct session
//! run, structured error envelopes with stable `code`s on the right
//! statuses (400/404/405/429/504), per-request deadlines via
//! `X-Deadline-Ms`, saturation shedding from the bounded admission
//! queue, and `/stats` accounting.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use causumx::{ConfigBuilder, Session};
use serve::{Handler, ServeOptions};
use table::TableBuilder;

/// Tiny fixed table: two group-by attributes and one outcome — queries
/// complete in microseconds, so tests exercise the transport, not the
/// miner.
fn session() -> Session {
    let table = TableBuilder::new()
        .cat("country", &["US", "US", "US", "FR", "FR", "FR", "IN", "IN"])
        .unwrap()
        .cat(
            "education",
            &["PhD", "BSc", "PhD", "BSc", "PhD", "BSc", "PhD", "BSc"],
        )
        .unwrap()
        .float(
            "salary",
            vec![120.0, 80.0, 125.0, 60.0, 90.0, 61.0, 30.0, 20.0],
        )
        .unwrap()
        .build()
        .unwrap();
    let dag = causal::Dag::new(
        &["country", "education", "salary"],
        &[("country", "salary"), ("education", "salary")],
    )
    .unwrap();
    let config = ConfigBuilder::new()
        .k(2)
        .theta(0.6)
        .min_arm(1)
        .threads(1)
        .build()
        .unwrap();
    Session::new(table, dag, config)
}

fn spawn(opts: ServeOptions) -> (serve::RunningServer, Arc<Handler>) {
    let handler = Arc::new(Handler::new(Arc::new(session()), opts));
    let server = serve::spawn(Arc::clone(&handler), "127.0.0.1:0").expect("bind ephemeral port");
    (server, handler)
}

/// One raw HTTP exchange; returns (status, body).
fn http(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_query(addr: SocketAddr, sql: &str, headers: &[(&str, &str)]) -> (u16, String) {
    let mut raw = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n",
        sql.len()
    );
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(sql);
    http(addr, raw)
}

const SQL: &str = "SELECT country, AVG(salary) FROM t GROUP BY country";

/// Wall-clock stage timings are the one nondeterministic report field.
fn strip_timings(body: &str) -> String {
    let Some(start) = body.find("\"timings\":{") else {
        return body.into();
    };
    let Some(end_rel) = body[start..].find('}') else {
        return body.into();
    };
    let mut end = start + end_rel + 1;
    if body[end..].starts_with(',') {
        end += 1;
    }
    format!("{}{}", &body[..start], &body[end..])
}

#[test]
fn query_over_tcp_matches_direct_session_run() {
    let (server, handler) = spawn(ServeOptions::default());

    let (status, body) = post_query(server.addr, SQL, &[]);
    assert_eq!(status, 200, "{body}");

    // The served body is the same report a direct in-process run yields.
    let direct = {
        let prepared = handler.session().sql(SQL).unwrap();
        let summary = prepared.run();
        prepared.report(&summary).to_json()
    };
    assert_eq!(strip_timings(&body), strip_timings(&direct));

    let (status, stats) = get(server.addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"queries_ok\":1"), "{stats}");
    assert!(stats.contains("\"prepared_cache\""), "{stats}");
    server.stop();
}

#[test]
fn routing_health_and_error_envelopes() {
    let (server, _handler) = spawn(ServeOptions::default());
    let addr = server.addr;

    assert_eq!(get(addr, "/healthz"), (200, "{\"status\":\"ok\"}".into()));

    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"not_found\""), "{body}");

    let (status, body) = http(
        addr,
        "DELETE /query HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n".into(),
    );
    assert_eq!(status, 405);
    assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");

    // Engine errors arrive as the `error_json` envelope on a 400.
    let (status, body) = post_query(
        addr,
        "SELECT country, AVG(wages) FROM t GROUP BY country",
        &[],
    );
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"sql\""), "{body}");
    assert!(body.contains("\"kind\":\"sql\""), "{body}");

    let (status, body) = http(addr, "NOT-HTTP\r\n\r\n".into());
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    server.stop();
}

#[test]
fn deadline_header_trips_as_504_with_structured_envelope() {
    let (server, _handler) = spawn(ServeOptions {
        allow_chaos: true,
        ..ServeOptions::default()
    });

    // A 60 ms injected stall against a 20 ms deadline: the guard trips
    // mid-mining and the error maps to 504 without killing the server.
    let (status, body) = post_query(
        server.addr,
        SQL,
        &[("X-Chaos", "delay:60"), ("X-Deadline-Ms", "20")],
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"code\":\"deadline_exceeded\""), "{body}");
    assert!(body.contains("\"after_ms\""), "{body}");

    // The server keeps serving afterwards.
    let (status, _) = post_query(server.addr, SQL, &[]);
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn saturation_sheds_load_with_429() {
    // One run slot, one queue slot: the third concurrent query must be
    // rejected immediately with the structured saturation envelope.
    let (server, _handler) = spawn(ServeOptions {
        allow_chaos: true,
        max_inflight: 1,
        max_queued: 1,
        ..ServeOptions::default()
    });
    let addr = server.addr;

    // Occupy the run slot with a long injected stall.
    let slow = std::thread::spawn(move || post_query(addr, SQL, &[("X-Chaos", "delay:600")]));
    std::thread::sleep(Duration::from_millis(150));
    // Occupy the single queue slot.
    let queued = std::thread::spawn(move || post_query(addr, SQL, &[]));
    std::thread::sleep(Duration::from_millis(150));

    // Both stages full: shed.
    let (status, body) = post_query(addr, SQL, &[]);
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"code\":\"saturated\""), "{body}");
    assert!(body.contains("\"inflight\":1"), "{body}");
    assert!(body.contains("\"queued\":1"), "{body}");

    // The stalled and queued requests both complete fine.
    let (status, _) = slow.join().unwrap();
    assert_eq!(status, 200);
    let (status, _) = queued.join().unwrap();
    assert_eq!(status, 200);

    let (_, stats) = get(addr, "/stats");
    assert!(stats.contains("\"rejected_saturated\":1"), "{stats}");
    server.stop();
}
