//! Bit-identity guarantees of the per-subpopulation confounder panel.
//!
//! The panel rework (PR 5) must be *behaviour-preserving*: a
//! [`causal::context::EstimationContext`] assembled from
//! [`causal::context::SubpopPanel`] blocks has to match a cold-built one
//! bit for bit — not merely to a tolerance — because the selection stage
//! compares CATEs and any last-bit drift could flip a comparison and
//! change the reported explanation set. These properties pin:
//!
//! 1. panel-assembled vs cold-built contexts across all confounder mixes
//!    (including permuted set orderings, which exercise the transposed
//!    cross-block read), with and without the §5.2(d) sampling cap;
//! 2. one panel serving many sets inside a [`causal::context::ContextCache`]
//!    against the cold per-set cache, for both estimator backends;
//! 3. the full miner and pipeline with `use_confounder_panel` on vs off,
//!    at `level_parallelism ∈ {1, 4}` — summaries bit-identical in every
//!    combination.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use causal::context::{ContextCache, EstimationContext, SubpopPanel};
use causal::estimate::{CateOptions, CateResult, EstimatorBackend};
use causumx::{ConfigBuilder, Session, Summary};
use mining::treatment::{LatticeOptions, TreatmentMiner, TreatmentResult};
use table::bitset::BitSet;
use table::{Table, TableBuilder};

/// A random-but-structured table (same shape as `tests/estimation_cache.rs`):
/// two categorical treatment candidates (`a`, `b`), one numeric confounder
/// (`num`), and an outcome with real effects plus data-driven noise.
fn build_table(cats_a: &[u8], cats_b: &[u8], nums: &[i64], noise: &[i64]) -> Table {
    let n = cats_a.len();
    let a: Vec<String> = cats_a.iter().map(|&v| format!("a{}", v % 3)).collect();
    let b: Vec<String> = cats_b.iter().map(|&v| format!("b{}", v % 2)).collect();
    let num: Vec<i64> = nums.to_vec();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            3.0 * (cats_a[i].is_multiple_of(3)) as i64 as f64
                - 2.0 * (cats_b[i] % 2 == 1) as i64 as f64
                + (nums[i] % 7) as f64 * 0.3
                + (noise[i] % 11) as f64 * 0.05
        })
        .collect();
    TableBuilder::new()
        .cat_owned("a", a)
        .unwrap()
        .cat_owned("b", b)
        .unwrap()
        .int("num", num)
        .unwrap()
        .float("y", y)
        .unwrap()
        .build()
        .unwrap()
}

fn arb_rows() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<i64>, Vec<i64>, Vec<bool>)> {
    (60usize..160).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(0u8..6, n),
            prop::collection::vec(-20i64..20, n),
            prop::collection::vec(-100i64..100, n),
            prop::collection::vec(any::<bool>(), n),
        )
    })
}

/// Full bit-identity of two optional estimates: same availability, and
/// bit-equal CATE / p-value (NaN ⇔ NaN) with equal counts.
fn assert_bit_identical(a: Option<CateResult>, b: Option<CateResult>) -> Result<(), TestCaseError> {
    match (a, b) {
        (Some(x), Some(y)) => {
            prop_assert_eq!(x.cate.to_bits(), y.cate.to_bits(), "CATE bits differ");
            let p_match = x.p_value.to_bits() == y.p_value.to_bits()
                || (x.p_value.is_nan() && y.p_value.is_nan());
            prop_assert!(
                p_match,
                "p-value bits differ: {} vs {}",
                x.p_value,
                y.p_value
            );
            prop_assert_eq!(x.n, y.n);
            prop_assert_eq!(x.n_treated, y.n_treated);
            prop_assert_eq!(x.n_control, y.n_control);
        }
        (x, y) => prop_assert_eq!(x.is_none(), y.is_none()),
    }
    Ok(())
}

/// Confounder mixes exercised everywhere below: the empty set, singletons,
/// the pair in both orders (the descending order reads the panel's
/// cross-Gram block transposed), and a set with the categorical first.
fn confounder_mixes() -> Vec<Vec<usize>> {
    vec![vec![], vec![1], vec![2], vec![1, 2], vec![2, 1], vec![0, 2]]
}

proptest! {
    /// (1) A panel-assembled context estimates bit-identically to a cold
    /// [`EstimationContext::new`] build, for every confounder mix, with
    /// and without the sampling cap.
    #[test]
    fn panel_assembly_matches_cold_build((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let n = table.nrows();
        let treated: Vec<bool> = ca.iter().map(|&v| v % 3 == 0).collect();
        let tbits = BitSet::from_mask(&treated);
        let sub_bits = BitSet::from_mask(&subpop);

        for cap in [None, Some(n / 2)] {
            let opts = CateOptions { sample_cap: cap, ..CateOptions::default() };
            // One panel serves every mix — exactly the miner's usage.
            let mut panel = SubpopPanel::new(&table, Some(&sub_bits), 3, &opts);
            for confounders in confounder_mixes() {
                let cold = EstimationContext::new(&table, Some(&sub_bits), 3, &confounders, &opts)
                    .and_then(|ctx| ctx.estimate(&tbits));
                let assembled = panel
                    .assemble(&table, &confounders)
                    .and_then(|ctx| ctx.estimate(&tbits));
                assert_bit_identical(assembled, cold)?;
            }
            // The panel materialized each attribute once, not once per set.
            prop_assert!(panel.attrs_built() <= 3);
        }
    }

    /// (2) A panel-backed [`ContextCache`] matches the cold per-set cache
    /// bit for bit, for both estimator backends, over repeated lookups.
    #[test]
    fn panel_cache_matches_cold_cache((ca, cb, nums, noise, subpop) in arb_rows()) {
        let table = build_table(&ca, &cb, &nums, &noise);
        let treated: Vec<bool> = ca.iter().map(|&v| v % 3 == 0).collect();
        let tbits = BitSet::from_mask(&treated);
        let sub_bits = BitSet::from_mask(&subpop);

        for backend in [EstimatorBackend::Regression, EstimatorBackend::Ipw] {
            let opts = CateOptions { backend, ..CateOptions::default() };
            let mut with_panel = ContextCache::with_panel(true);
            let mut cold = ContextCache::with_panel(false);
            for _ in 0..2 {
                for confounders in confounder_mixes() {
                    let a = with_panel
                        .get_or_build(&table, Some(&sub_bits), 3, confounders.clone(), &opts)
                        .and_then(|ctx| ctx.estimate(&tbits));
                    let b = cold
                        .get_or_build(&table, Some(&sub_bits), 3, confounders, &opts)
                        .and_then(|ctx| ctx.estimate(&tbits));
                    assert_bit_identical(a, b)?;
                }
            }
            // Identical `builds()` accounting on both paths.
            prop_assert_eq!(with_panel.builds(), cold.builds());
            prop_assert!(with_panel.panel().is_some());
            prop_assert!(cold.panel().is_none());
        }
    }
}

fn treatment_keys(ts: &[TreatmentResult]) -> Vec<(String, u64, u64)> {
    ts.iter()
        .map(|t| (t.pattern.key(), t.cate.to_bits(), t.p_value.to_bits()))
        .collect()
}

/// (3a) The lattice walk with the panel on vs off returns bit-identical
/// treatments and identical work counters, at serial and 4-way
/// within-level parallelism.
#[test]
fn miner_panel_ablation_bit_identical() {
    let ds = datagen::so::generate(2_000, 11);
    let t_attrs = table::fd::treatment_attrs(&ds.table, &ds.group_by, &[ds.outcome]);
    let opts_on = LatticeOptions::default();
    let opts_off = LatticeOptions {
        use_confounder_panel: false,
        ..LatticeOptions::default()
    };
    let on = TreatmentMiner::new(&ds.table, &ds.dag, ds.outcome, &t_attrs, opts_on);
    let off = TreatmentMiner::new(&ds.table, &ds.dag, ds.outcome, &t_attrs, opts_off);
    let subpop = BitSet::full(ds.table.nrows());
    for threads in [1usize, 4] {
        let a = on.top_treatments_paired_with(&subpop, 3, true, threads);
        let b = off.top_treatments_paired_with(&subpop, 3, true, threads);
        assert_eq!(
            treatment_keys(&a.positive),
            treatment_keys(&b.positive),
            "positive walk, {threads} threads"
        );
        assert_eq!(
            treatment_keys(&a.negative),
            treatment_keys(&b.negative),
            "negative walk, {threads} threads"
        );
        assert_eq!(a.stats.evaluated, b.stats.evaluated);
        assert_eq!(a.stats.contexts_built, b.stats.contexts_built);
    }
}

fn run_pipeline(panel: bool, threads: usize, seed: u64) -> Summary {
    let ds = datagen::so::generate(3_000, seed);
    let cfg = ConfigBuilder::new()
        .use_confounder_panel(panel)
        .threads(threads)
        .build()
        .unwrap();
    Session::new(ds.table.clone(), ds.dag.clone(), cfg)
        .prepare(ds.query())
        .unwrap()
        .run()
}

/// (3b) End-to-end pipeline summaries are bit-identical across the
/// `use_confounder_panel` × `threads ∈ {1, 4}` grid.
#[test]
fn pipeline_panel_ablation_bit_identical() {
    for seed in [7u64, 21] {
        let reference = run_pipeline(true, 1, seed);
        for (panel, threads) in [(true, 4), (false, 1), (false, 4)] {
            let other = run_pipeline(panel, threads, seed);
            assert_eq!(
                reference.total_weight.to_bits(),
                other.total_weight.to_bits(),
                "seed {seed}, panel {panel}, {threads} threads"
            );
            assert_eq!(reference.cate_evaluations, other.cate_evaluations);
            assert_eq!(reference.covered, other.covered);
            assert_eq!(reference.candidates, other.candidates);
            let keys = |s: &Summary| {
                let mut v: Vec<String> = s.explanations.iter().map(|e| e.grouping.key()).collect();
                v.sort();
                v
            };
            assert_eq!(keys(&reference), keys(&other));
        }
    }
}
