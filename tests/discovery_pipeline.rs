//! Discovery → CauSumX integration: the full §6.6 loop of discovering a
//! DAG from data and feeding it to the explanation pipeline.

use causumx::{ConfigBuilder, Session};
use discovery::{attr_names, fci, lingam, no_dag, numeric_columns, pc};

fn sampled(ds: &datagen::Dataset, rows: usize) -> table::Table {
    let keep: Vec<usize> = (0..ds.table.nrows()).take(rows).collect();
    ds.table.take(&keep)
}

#[test]
fn pc_dag_drives_pipeline_end_to_end() {
    let ds = datagen::adult::generate(2_500, 61);
    let sub = sampled(&ds, 1_200);
    let dag = pc(&numeric_columns(&sub), &attr_names(&sub), 0.01);
    assert!(dag.topological_order().is_some());
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(
        summary.covered > 0,
        "discovered-DAG run must explain something"
    );
    assert!(summary.total_weight > 0.0);
}

#[test]
fn fci_dag_drives_pipeline_end_to_end() {
    let ds = datagen::adult::generate(2_500, 67);
    let sub = sampled(&ds, 1_200);
    let dag = fci(&numeric_columns(&sub), &attr_names(&sub), 0.01);
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(summary.covered > 0);
}

#[test]
fn lingam_dag_drives_pipeline_end_to_end() {
    let ds = datagen::impus::generate(2_500, 71);
    let sub = sampled(&ds, 1_200);
    let dag = lingam(&numeric_columns(&sub), &attr_names(&sub));
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(summary.covered > 0);
}

#[test]
fn no_dag_baseline_runs_but_unadjusted() {
    let ds = datagen::adult::generate(2_500, 73);
    let dag = no_dag(&attr_names(&ds.table), ds.outcome_name());
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    // Every attribute is a root parent of the outcome ⇒ no confounders
    // are ever adjusted for; the summary still exists.
    assert!(summary.covered > 0);
    for e in &summary.explanations {
        assert!(e.has_treatment());
    }
}

#[test]
fn discovered_dags_agree_roughly_with_ground_truth_effects() {
    // The strongest ground-truth treatment should keep the same CATE sign
    // under a PC-discovered DAG (the τ experiments rely on this stability).
    let ds = datagen::so::generate(3_000, 79);
    let sub = sampled(&ds, 1_200);
    let dag = pc(&numeric_columns(&sub), &attr_names(&sub), 0.01);

    let t_attrs = table::fd::treatment_attrs(&ds.table, &ds.group_by, &[ds.outcome]);
    let gt_miner = mining::treatment::TreatmentMiner::new(
        &ds.table,
        &ds.dag,
        ds.outcome,
        &t_attrs,
        mining::treatment::LatticeOptions::default(),
    );
    let subpop = table::bitset::BitSet::full(ds.table.nrows());
    let (best, _) = gt_miner.top_treatment(&subpop, mining::treatment::Direction::Positive);
    let best = best.expect("ground-truth best treatment");

    let pc_miner = mining::treatment::TreatmentMiner::new(
        &ds.table,
        &dag,
        ds.outcome,
        &t_attrs,
        mining::treatment::LatticeOptions {
            prune_by_dag: false,
            ..Default::default()
        },
    );
    let under_pc = pc_miner
        .eval_pattern(&subpop, &best.pattern)
        .expect("evaluable under PC DAG");
    assert!(
        under_pc.cate > 0.0,
        "sign flip under discovered DAG: {} vs {}",
        best.cate,
        under_pc.cate
    );
}
