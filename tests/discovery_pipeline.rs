//! Discovery → CauSumX integration: the full §6.6 loop of discovering a
//! DAG from data and feeding it to the explanation pipeline.

use causumx::{ConfigBuilder, Session};
use discovery::{attr_names, fci, hill_climb, lingam, no_dag, numeric_columns, pc, shd};

fn sampled(ds: &datagen::Dataset, rows: usize) -> table::Table {
    let keep: Vec<usize> = (0..ds.table.nrows()).take(rows).collect();
    ds.table.take(&keep)
}

/// Directed-edge precision and recall of `got` against the ground truth.
/// An empty discovered graph scores precision 1 (it asserted nothing)
/// and recall 0 — the recall floor is what catches it.
fn precision_recall(truth: &causal::Dag, got: &causal::Dag) -> (f64, f64) {
    let t: std::collections::HashSet<(usize, usize)> = truth.edges().into_iter().collect();
    let g: std::collections::HashSet<(usize, usize)> = got.edges().into_iter().collect();
    let tp = g.intersection(&t).count() as f64;
    let p = if g.is_empty() {
        1.0
    } else {
        tp / g.len() as f64
    };
    (p, tp / t.len() as f64)
}

/// Every discovery algorithm recovers a usable fraction of the synthetic
/// ground-truth SCM (`G → G_l`, `T_k → O`). Floors, not exact pins:
/// discovery output is deterministic per seed, but the floors state what
/// the §6.6 experiments actually require — mostly-right edges for the
/// constraint-based family, sign-correct adjustment sets for the rest.
/// Observed at seeds {7, 42, 99}: PC/FCI 0.71/0.71, hill-climb
/// 0.57/0.57, LiNGAM 0.19–0.30 precision at 0.43 recall (its iid-lattice
/// data violates the non-Gaussianity it needs, hence the loose floor).
#[test]
fn discovery_recovers_synthetic_ground_truth_edges() {
    let ds = datagen::synthetic::generate(
        datagen::synthetic::SynthParams {
            n: 2_000,
            tuples_per_group: 40,
            ..Default::default()
        },
        42,
    );
    let data = numeric_columns(&ds.table);
    let names = attr_names(&ds.table);
    let max_shd = ds.dag.len() * (ds.dag.len() - 1) / 2;
    for (label, dag, p_floor, r_floor) in [
        ("pc", pc(&data, &names, 0.01), 0.6, 0.6),
        ("fci", fci(&data, &names, 0.01), 0.6, 0.6),
        ("hillclimb", hill_climb(&data, &names, 200), 0.5, 0.5),
        ("lingam", lingam(&data, &names), 0.15, 0.3),
    ] {
        let (p, r) = precision_recall(&ds.dag, &dag);
        assert!(
            p >= p_floor,
            "{label}: edge precision {p:.2} below floor {p_floor}"
        );
        assert!(
            r >= r_floor,
            "{label}: edge recall {r:.2} below floor {r_floor}"
        );
        // SHD against truth must beat the trivial worst case by a wide
        // margin (an empty or fully wrong graph sits at ≥ 7 here).
        let d = shd(&ds.dag, &dag);
        assert!(
            d < max_shd / 2,
            "{label}: SHD {d} not meaningfully below the {max_shd} ceiling"
        );
        assert!(
            dag.topological_order().is_some(),
            "{label}: emitted graph must be a DAG"
        );
    }
}

#[test]
fn pc_dag_drives_pipeline_end_to_end() {
    let ds = datagen::adult::generate(2_500, 61);
    let sub = sampled(&ds, 1_200);
    let dag = pc(&numeric_columns(&sub), &attr_names(&sub), 0.01);
    assert!(dag.topological_order().is_some());
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(
        summary.covered > 0,
        "discovered-DAG run must explain something"
    );
    assert!(summary.total_weight > 0.0);
}

#[test]
fn fci_dag_drives_pipeline_end_to_end() {
    let ds = datagen::adult::generate(2_500, 67);
    let sub = sampled(&ds, 1_200);
    let dag = fci(&numeric_columns(&sub), &attr_names(&sub), 0.01);
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(summary.covered > 0);
}

#[test]
fn lingam_dag_drives_pipeline_end_to_end() {
    let ds = datagen::impus::generate(2_500, 71);
    let sub = sampled(&ds, 1_200);
    let dag = lingam(&numeric_columns(&sub), &attr_names(&sub));
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    assert!(summary.covered > 0);
}

#[test]
fn no_dag_baseline_runs_but_unadjusted() {
    let ds = datagen::adult::generate(2_500, 73);
    let dag = no_dag(&attr_names(&ds.table), ds.outcome_name());
    let cfg = ConfigBuilder::new().theta(0.5).build().unwrap();
    let summary = Session::new(ds.table.clone(), dag, cfg)
        .prepare(ds.query())
        .unwrap()
        .run();
    // Every attribute is a root parent of the outcome ⇒ no confounders
    // are ever adjusted for; the summary still exists.
    assert!(summary.covered > 0);
    for e in &summary.explanations {
        assert!(e.has_treatment());
    }
}

#[test]
fn discovered_dags_agree_roughly_with_ground_truth_effects() {
    // The strongest ground-truth treatment should keep the same CATE sign
    // under a PC-discovered DAG (the τ experiments rely on this stability).
    let ds = datagen::so::generate(3_000, 79);
    let sub = sampled(&ds, 1_200);
    let dag = pc(&numeric_columns(&sub), &attr_names(&sub), 0.01);

    let t_attrs = table::fd::treatment_attrs(&ds.table, &ds.group_by, &[ds.outcome]);
    let gt_miner = mining::treatment::TreatmentMiner::new(
        &ds.table,
        &ds.dag,
        ds.outcome,
        &t_attrs,
        mining::treatment::LatticeOptions::default(),
    );
    let subpop = table::bitset::BitSet::full(ds.table.nrows());
    let (best, _) = gt_miner.top_treatment(&subpop, mining::treatment::Direction::Positive);
    let best = best.expect("ground-truth best treatment");

    let pc_miner = mining::treatment::TreatmentMiner::new(
        &ds.table,
        &dag,
        ds.outcome,
        &t_attrs,
        mining::treatment::LatticeOptions {
            prune_by_dag: false,
            ..Default::default()
        },
    );
    let under_pc = pc_miner
        .eval_pattern(&subpop, &best.pattern)
        .expect("evaluable under PC DAG");
    assert!(
        under_pc.cate > 0.0,
        "sign flip under discovered DAG: {} vs {}",
        best.cate,
        under_pc.cate
    );
}
