#!/usr/bin/env bash
# Gate: `causumx-serve` boots, answers a real query over TCP, and sheds
# failures as structured envelopes without dying.
#
# Starts the server on a small generated dataset, then asserts with
# plain curl:
#   * GET  /healthz          → 200 {"status":"ok"}
#   * POST /query            → 200 report JSON (Definition 4.5 fields)
#   * POST /query (bad SQL)  → 400 envelope with "kind" and "code"
#   * POST /query + tight
#     X-Deadline-Ms          → 504 deadline_exceeded envelope
#   * GET  /stats            → 200 with prepared_cache counters, and the
#     server is still alive after the failed requests above.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-7979}"
BASE="http://127.0.0.1:$PORT"
LOG=$(mktemp)

cargo build --release --bin causumx-serve

./target/release/causumx-serve \
    --port "$PORT" --rows 4000 --seed 7 --deadline-ms 30000 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listener (dataset generation takes a moment).
for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

fail() {
    echo "serve smoke: $1" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

health=$(curl -s "$BASE/healthz")
[ "$health" = '{"status":"ok"}' ] || fail "bad /healthz body: $health"

report=$(curl -s -X POST --data-binary \
    'SELECT Country, AVG(Salary) FROM so GROUP BY Country' "$BASE/query")
echo "$report" | grep -q '"explanations"' || fail "report lacks explanations: $report"
echo "$report" | grep -q '"total_explainability"' || fail "report lacks total_explainability"
echo "$report" | python3 -m json.tool >/dev/null || fail "report is not valid JSON"

badsql=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary \
    'SELECT Country, AVG(Wages) FROM so GROUP BY Country' "$BASE/query")
[ "$badsql" = "400" ] || fail "bad SQL answered $badsql, expected 400"
badbody=$(curl -s -X POST --data-binary \
    'SELECT Country, AVG(Wages) FROM so GROUP BY Country' "$BASE/query")
echo "$badbody" | grep -q '"code":"sql"' || fail "bad-SQL envelope lacks code: $badbody"
echo "$badbody" | python3 -m json.tool >/dev/null || fail "error envelope is not valid JSON"

# A 1 ms deadline cannot fit view materialization + mining at 4000 rows.
deadline=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'X-Deadline-Ms: 1' --data-binary \
    'SELECT Country, AVG(Salary) FROM so WHERE Age < 60 GROUP BY Country' "$BASE/query")
[ "$deadline" = "504" ] || fail "over-deadline query answered $deadline, expected 504"

# Still alive after the failures, and the cache counters are exposed.
stats=$(curl -s "$BASE/stats")
echo "$stats" | grep -q '"prepared_cache"' || fail "/stats lacks prepared_cache: $stats"
echo "$stats" | python3 -m json.tool >/dev/null || fail "/stats is not valid JSON"

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "serve smoke: OK"
