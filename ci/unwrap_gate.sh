#!/usr/bin/env bash
# Gate: no bare `.unwrap()` on the library query path.
#
# The engine's failure model (see ARCHITECTURE.md, "Failure model")
# routes every runtime failure into structured errors; a bare
# `.unwrap()` in library code is an unattributed panic waiting to
# happen. This gate counts `.unwrap()` occurrences in the non-test,
# non-doc-comment code of the library crates and fails when the count
# exceeds the cap below.
#
# Test modules (everything from the first `#[cfg(test)]` to EOF — the
# repo convention keeps tests at the bottom of each file), doc comments
# (`///`, `//!`) and plain comments are excluded. Invariant `.expect()`
# calls with a justification message remain the accepted idiom for
# statically-unreachable failures.
#
# If you add a genuinely-safe unwrap, either convert it to an
# `.expect("why this cannot fail")` or raise the cap in the same PR with
# a justification in the PR description.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(crates/core crates/mining crates/causal crates/table crates/serve)
CAP=0

count=0
offenders=""
for crate in "${CRATES[@]}"; do
    while IFS= read -r f; do
        tests_start=$( (grep -n '#\[cfg(test)\]' "$f" || true) | head -1 | cut -d: -f1)
        tests_start=${tests_start:-$((10 ** 9))}
        hits=$(awk -v t="$tests_start" 'NR < t' "$f" \
            | grep -n '\.unwrap()' \
            | grep -vE '^\s*[0-9]+:\s*(///|//!|//)' || true)
        if [ -n "$hits" ]; then
            n=$(printf '%s\n' "$hits" | wc -l)
            count=$((count + n))
            offenders+=$(printf '%s\n' "$hits" | sed "s|^|$f:|")$'\n'
        fi
    done < <(find "$crate/src" -name '*.rs')
done

if [ "$count" -gt "$CAP" ]; then
    echo "unwrap gate: $count bare .unwrap() call(s) in library code (cap: $CAP)" >&2
    printf '%s' "$offenders" >&2
    exit 1
fi
echo "unwrap gate: OK ($count bare .unwrap() in library code, cap $CAP)"
