//! Offline stand-in for the crates.io
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness.
//!
//! Implements the surface the `bench` crate's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement loop: each benchmark runs `sample_size` timed
//! samples after one warm-up and reports min/mean/max wall-clock time to
//! stdout. No statistics, plots or baselines; swap in real criterion when
//! the build is allowed network access.

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

/// Top-level harness handle, one per `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let n = self.criterion.sample_size;
        run_one(&label, n, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/name/param` style id.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        bb(f()); // warm-up, also keeps the result alive
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            bb(f());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples_ns.iter().cloned().fold(0.0, f64::max);
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    println!(
        "{label:<40} [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function, criterion-style. Supports both the
/// `name = ...; config = ...; targets = ...` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                42
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_and_ids_render() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| b.iter(|| n * 2));
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("macro_noop", |b| b.iter(|| 0));
    }

    #[test]
    fn macro_defined_group_runs() {
        sample_group();
    }
}
