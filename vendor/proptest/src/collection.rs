//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Inclusive length bounds accepted by [`fn@vec`]: a fixed `usize`, `lo..hi`
/// or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range must be non-empty");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec<T>` with a length drawn from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = vec(any::<bool>(), 7);
        let ranged = vec(0i64..10, 2..5);
        let inclusive = vec(0u8..3, 1..=3);
        for _ in 0..200 {
            assert_eq!(fixed.gen_value(&mut rng).len(), 7);
            assert!((2..5).contains(&ranged.gen_value(&mut rng).len()));
            assert!((1..=3).contains(&inclusive.gen_value(&mut rng).len()));
        }
    }
}
