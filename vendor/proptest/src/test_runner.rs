//! Case execution: configuration, the per-case error type, and the loop
//! the [`proptest!`](crate::proptest) macro expands into.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A config differing from the default only in the case count.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case (and the test) fails.
    Fail(String),
    /// `prop_assume!` filtered the input; draw another case.
    Reject,
}

/// Per-case result produced by the generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run `config.cases` accepted cases of `case`, panicking on the first
/// failure. Rejections (`prop_assume!`) are retried, with a cap matching
/// upstream's global reject limit so a bad assumption cannot spin forever.
pub fn run_cases<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Deterministic per-test seed so failures reproduce across runs.
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejects = 65_536u32.max(config.cases.saturating_mul(16));
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected}, {accepted}/{} cases accepted)",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}': case {} failed: {msg}", accepted + 1);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases_and_skips_rejects() {
        let mut calls = 0u32;
        run_cases(&Config::with_cases(10), "t", |_| {
            calls += 1;
            if calls.is_multiple_of(3) {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls > 10, "rejections must not count as cases");
    }

    #[test]
    #[should_panic(expected = "case 1 failed: boom")]
    fn failure_panics_with_message() {
        run_cases(&Config::with_cases(5), "t", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
