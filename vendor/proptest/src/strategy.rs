//! The [`Strategy`] trait and its combinators. A strategy here is just a
//! deterministic-given-the-RNG value generator; shrinking is not
//! implemented (failures report the assertion, not a minimal input).

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy yielding a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_generate() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0usize..5, -2.0f64..2.0).prop_map(|(n, x)| (n, x * 2.0));
        for _ in 0..200 {
            let (n, x) = s.gen_value(&mut rng);
            assert!(n < 5);
            assert!((-4.0..4.0).contains(&x));
        }
        let dependent = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, i) = dependent.gen_value(&mut rng);
            assert!(i < n);
        }
    }
}
