//! Offline stand-in for the crates.io
//! [`proptest`](https://docs.rs/proptest/1) property-testing framework,
//! covering the surface `tests/properties.rs` uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * range and tuple strategies, [`collection::vec`], [`any`],
//!   [`Strategy::prop_map`] and [`Strategy::prop_flat_map`].
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! test name, case index and assertion message, not a minimized input) and
//! generation is driven by the workspace's vendored `rand`. Case counts
//! default to 256 like upstream.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::Strategy;

/// The `proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` random inputs and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::Config::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(
                    let $pat =
                        $crate::strategy::Strategy::gen_value(&($strat), __proptest_rng);
                )+
                let __proptest_case =
                    move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __proptest_case()
            });
        }
    )*};
}

/// Assert inside a proptest body; on failure the current case fails with
/// the formatted message (no panic until the runner reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` on `==`, printing both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), lhs, rhs
        );
    }};
}

/// `prop_assert!` on `!=`, printing both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Discard the current case (it counts as rejected, not failed) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
