//! `any::<T>()` — the canonical whole-type strategy.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Distribution, Rng, Standard};

use crate::strategy::Strategy;

/// Types with a canonical strategy covering the whole type.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (fair `bool`, full-range integers).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy backing [`any`]: samples `T`'s `Standard` distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Strategy for AnyStrategy<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = any::<bool>();
        let trues = (0..1_000).filter(|_| s.gen_value(&mut rng)).count();
        assert!((300..700).contains(&trues), "fair coin, got {trues}/1000");
    }
}
