//! Offline stand-in for the crates.io [`rand`](https://docs.rs/rand/0.8)
//! crate, API-compatible with the subset this workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   the primitive integer and float types) and [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid enough for the workspace's seeded SCM
//! generators and Monte-Carlo tests. It is **not** cryptographically secure
//! and makes no cross-version reproducibility promise with real `rand`.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source. Everything in [`Rng`] is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64`/`f32` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS "entropy". Offline stand-in: a fixed seed — callers in
    /// this workspace always seed explicitly.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

/// Marker distribution for "the natural uniform distribution of a type".
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Types samplable under a distribution `D`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts. Blanket-implemented for
/// `Range<T>`/`RangeInclusive<T>` over every [`SampleUniform`] `T` — a
/// single generic impl, like real `rand`, so type inference can unify the
/// range's element type with the surrounding context (e.g. a slice index
/// forcing `usize`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform integer in `[0, span)` by widening multiply — avoids the modulo
/// bias of `next_u64 % span` without a rejection loop.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // `lo + unit*(hi-lo)` can round up to `hi` (always for f32
                // near unit = 1, ~50% of draws for 1-ulp f64 spans), which
                // would violate the half-open contract — resample, then
                // fall back to `lo` so degenerate ranges still terminate.
                for _ in 0..8 {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let val = lo + (unit as $t) * (hi - lo);
                    if val < hi {
                        return val;
                    }
                }
                lo
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-3..9);
            assert!((-3..9).contains(&v));
            let u: usize = rng.gen_range(0..=4);
            assert!(u <= 4);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_half_open_excludes_upper_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        // f32: without resampling, the 53-bit unit rounds to 1.0f32 about
        // every 2^25 draws, leaking the excluded bound.
        for _ in 0..200_000 {
            let v: f32 = rng.gen_range(0.0f32..1.0);
            assert!(v < 1.0);
        }
        // 1-ulp f64 span: only `lo` is in-range.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        for _ in 0..1_000 {
            assert_eq!(rng.gen_range(lo..hi), lo);
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 5e-3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 1e5 - 0.3).abs() < 5e-3);
    }
}
