//! Sequence helpers: the [`SliceRandom`] extension trait.

use crate::{Rng, RngCore};

/// Random operations on slices (Fisher–Yates shuffle, uniform choice).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly pick a reference, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
